"""Linear attention (Katharopoulos et al., 2020) and its distribution.

Section VII-C of the paper: efficient-transformer variants "follow the
overall transformer architecture and workflow except for modifications to
the attention phase, [so] Voltage can be easily extended to distribute them
with minor changes to the customized attention procedures."  This module is
that extension, worked out for the kernelised linear transformer:

    LinAttn(x)_i = φ(q_i)ᵀ · S  /  (φ(q_i)ᵀ · z),
    S = Σ_j φ(k_j) v_jᵀ  ∈ R^{F_H×F_H},     z = Σ_j φ(k_j) ∈ R^{F_H},

with φ(u) = elu(u) + 1.  Because S and z are *sums over positions*, they
distribute even better than softmax attention: each device reduces its own
position slice locally and a single All-Reduce of the tiny (F_H×F_H + F_H)
state — independent of N! — completes the attention.  The query side is
position-wise and needs no further communication.

Per-device cost: O(P·F·F_H + P·F_H²) — *no* constant N-term at all, unlike
Eq. (3)'s 2NFF_H (Theorem 1).  Communication: H·(F_H² + F_H) elements per
layer for the state All-Reduce plus the usual (K−1)NF/K output All-Gather.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.orders import AttentionParams, merge_heads, split_heads
from repro.tensor import functional as F

__all__ = [
    "feature_map",
    "LinearAttentionState",
    "linear_attention_full",
    "linear_attention_local_state",
    "linear_attention_apply",
    "linear_attention_partition",
    "state_elements",
]

_EPS = 1e-6


def feature_map(u: np.ndarray) -> np.ndarray:
    """φ(u) = elu(u) + 1 — positive feature map of the linear transformer."""
    return np.where(u > 0, u + 1.0, np.exp(np.minimum(u, 0.0)))


@dataclass
class LinearAttentionState:
    """The distributable reduction state: S ∈ (H, F_H, F_H), z ∈ (H, F_H)."""

    s: np.ndarray
    z: np.ndarray

    def __add__(self, other: "LinearAttentionState") -> "LinearAttentionState":
        """States are additive — this is what makes the All-Reduce valid."""
        return LinearAttentionState(self.s + other.s, self.z + other.z)

    @property
    def nbytes(self) -> int:
        return self.s.nbytes + self.z.nbytes


def state_elements(num_heads: int, head_dim: int) -> int:
    """Elements moved per state All-Reduce: H·(F_H² + F_H) — N-independent."""
    return num_heads * (head_dim * head_dim + head_dim)


def _project(x: np.ndarray, params: AttentionParams) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    q = split_heads(F.linear(x, params.wq, params.bq), params.num_heads)
    k = split_heads(F.linear(x, params.wk, params.bk), params.num_heads)
    v = split_heads(F.linear(x, params.wv, params.bv), params.num_heads)
    return feature_map(q), feature_map(k), v


def linear_attention_local_state(
    x: np.ndarray, start: int, stop: int, params: AttentionParams
) -> LinearAttentionState:
    """One device's partial reduction over its position slice [start, stop).

    Only the slice's K/V projections are computed — cost O(P·F·F_H) — which
    is the whole point: no device ever touches the full K, V matrices.
    """
    n = x.shape[0]
    if not (0 <= start <= stop <= n):
        raise ValueError(f"invalid slice [{start}, {stop}) for N={n}")
    x_slice = x[start:stop]
    k = split_heads(F.linear(x_slice, params.wk, params.bk), params.num_heads)
    v = split_heads(F.linear(x_slice, params.wv, params.bv), params.num_heads)
    phi_k = feature_map(k)
    s = phi_k.transpose(0, 2, 1) @ v  # (H, F_H, F_H)
    z = phi_k.sum(axis=1)  # (H, F_H)
    return LinearAttentionState(s=s, z=z)


def linear_attention_apply(
    x: np.ndarray,
    start: int,
    stop: int,
    params: AttentionParams,
    state: LinearAttentionState,
) -> np.ndarray:
    """Query-side application for output rows [start, stop) — position-wise."""
    xp = x[start:stop]
    q = split_heads(F.linear(xp, params.wq, params.bq), params.num_heads)
    phi_q = feature_map(q)  # (H, P, F_H)
    numerator = phi_q @ state.s  # (H, P, F_H)
    denominator = np.einsum("hpd,hd->hp", phi_q, state.z)[:, :, None] + _EPS
    return merge_heads(numerator / denominator)


def linear_attention_full(x: np.ndarray, params: AttentionParams) -> np.ndarray:
    """Reference single-device linear attention over the whole sequence."""
    state = linear_attention_local_state(x, 0, x.shape[0], params)
    return linear_attention_apply(x, 0, x.shape[0], params, state)


def linear_attention_partition(
    x: np.ndarray,
    start: int,
    stop: int,
    params: AttentionParams,
    slices: list[tuple[int, int]] | None = None,
) -> np.ndarray:
    """Distributed-protocol emulation: local reductions → sum → apply.

    ``slices`` is the position partition used for the state reduction (one
    slice per device); by default the whole sequence is one slice.  The
    result is identical regardless of how the reduction was partitioned —
    the associativity property the protocol relies on.
    """
    if slices is None:
        slices = [(0, x.shape[0])]
    partials = [linear_attention_local_state(x, a, b, params) for a, b in slices]
    state = partials[0]
    for partial in partials[1:]:
        state = state + partial
    return linear_attention_apply(x, start, stop, params, state)
