"""Linformer (Wang et al., 2020) low-rank attention and its distribution.

Linformer replaces the (N×N) attention matrix with a (N×r) one by
projecting keys and values along the *sequence* axis with learned
``E, F ∈ R^{r×N}``:

    Attn(Q, E·K, F·V) — softmax over r columns instead of N.

Distribution follows the same local-reduce pattern as linear attention:
``E·K = Σ_d E[:, slice_d] · K[slice_d]`` is a sum of per-device partials, so
each device projects only its own position slice and a single All-Reduce of
the (H, r, F_H) compressed keys/values — again independent of N in the
``F_H`` sense and *much* smaller than K, V — completes the attention.

Per-device cost: O(P·F·F_H + P·r·F_H); communication: 2·H·r·F_H elements of
state per layer plus the usual output All-Gather.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.orders import AttentionParams, merge_heads, split_heads
from repro.tensor import functional as F

__all__ = [
    "LinformerProjections",
    "LinformerState",
    "linformer_local_state",
    "linformer_apply",
    "linformer_full",
    "linformer_partition",
    "state_elements",
]


@dataclass
class LinformerProjections:
    """The learned sequence-axis projections E (keys) and F (values)."""

    e: np.ndarray  # (r, N_max)
    f: np.ndarray  # (r, N_max)

    def __post_init__(self) -> None:
        if self.e.shape != self.f.shape:
            raise ValueError(f"E/F shapes disagree: {self.e.shape} vs {self.f.shape}")

    @property
    def rank(self) -> int:
        return self.e.shape[0]

    @property
    def max_length(self) -> int:
        return self.e.shape[1]

    @classmethod
    def random(
        cls, rank: int, max_length: int, rng: np.random.Generator | None = None
    ) -> "LinformerProjections":
        rng = rng if rng is not None else np.random.default_rng(0)
        scale = 1.0 / math.sqrt(max_length)
        return cls(
            e=rng.normal(0, scale, size=(rank, max_length)).astype(np.float32),
            f=rng.normal(0, scale, size=(rank, max_length)).astype(np.float32),
        )


@dataclass
class LinformerState:
    """Compressed keys/values: K' ∈ (H, r, F_H), V' ∈ (H, r, F_H)."""

    k: np.ndarray
    v: np.ndarray

    def __add__(self, other: "LinformerState") -> "LinformerState":
        return LinformerState(self.k + other.k, self.v + other.v)

    @property
    def nbytes(self) -> int:
        return self.k.nbytes + self.v.nbytes


def state_elements(num_heads: int, rank: int, head_dim: int) -> int:
    """Elements moved per state All-Reduce: 2·H·r·F_H."""
    return 2 * num_heads * rank * head_dim


def linformer_local_state(
    x: np.ndarray,
    start: int,
    stop: int,
    params: AttentionParams,
    projections: LinformerProjections,
) -> LinformerState:
    """Partial ``E[:, slice]·K[slice]`` and ``F[:, slice]·V[slice]``."""
    n = x.shape[0]
    if n > projections.max_length:
        raise ValueError(
            f"sequence length {n} exceeds projection capacity {projections.max_length}"
        )
    if not (0 <= start <= stop <= n):
        raise ValueError(f"invalid slice [{start}, {stop}) for N={n}")
    x_slice = x[start:stop]
    k = split_heads(F.linear(x_slice, params.wk, params.bk), params.num_heads)
    v = split_heads(F.linear(x_slice, params.wv, params.bv), params.num_heads)
    e_slice = projections.e[:, start:stop]  # (r, P)
    f_slice = projections.f[:, start:stop]
    return LinformerState(k=e_slice @ k, v=f_slice @ v)  # (H, r, F_H) each


def linformer_apply(
    x: np.ndarray,
    start: int,
    stop: int,
    params: AttentionParams,
    state: LinformerState,
) -> np.ndarray:
    """Query rows [start, stop) against the compressed keys/values."""
    xp = x[start:stop]
    q = split_heads(F.linear(xp, params.wq, params.bq), params.num_heads)  # (H, P, F_H)
    scores = q @ state.k.transpose(0, 2, 1) / math.sqrt(params.head_dim)  # (H, P, r)
    weights = F.softmax(scores, axis=-1)
    return merge_heads(weights @ state.v)  # (P, H·F_H)


def linformer_full(
    x: np.ndarray, params: AttentionParams, projections: LinformerProjections
) -> np.ndarray:
    """Reference single-device Linformer attention."""
    state = linformer_local_state(x, 0, x.shape[0], params, projections)
    return linformer_apply(x, 0, x.shape[0], params, state)


def linformer_partition(
    x: np.ndarray,
    start: int,
    stop: int,
    params: AttentionParams,
    projections: LinformerProjections,
    slices: list[tuple[int, int]] | None = None,
) -> np.ndarray:
    """Distributed-protocol emulation: partial projections → sum → apply."""
    if slices is None:
        slices = [(0, x.shape[0])]
    partials = [linformer_local_state(x, a, b, params, projections) for a, b in slices]
    state = partials[0]
    for partial in partials[1:]:
        state = state + partial
    return linformer_apply(x, start, stop, params, state)
