"""Transformer layers with efficient attention, partitioned Voltage-style.

Combines :mod:`repro.efficient.linear_attention` / `linformer` with the
standard position-wise machinery (output projection, residuals, layer norm,
FFN) into a drop-in layer, and provides the partitioned executor
implementing the two-phase distributed protocol:

1. **reduce phase** — each device computes the attention state from its own
   position slice; a tiny All-Reduce sums the states (H·F_H² elements for
   linear attention, 2·H·r·F_H for Linformer — both independent of N);
2. **apply phase** — each device computes its output partition
   position-wise, followed by the usual output All-Gather.

The executor exposes the same ``forward_partition`` contract as
:class:`repro.core.layer.PartitionedLayerExecutor`, so the equivalence
tests run the identical tiling checks.
"""

from __future__ import annotations

import numpy as np

from repro.core.partition import Partition, PartitionScheme
from repro.efficient import linear_attention as lin
from repro.efficient import linformer as lfm
from repro.models.attention import MultiHeadSelfAttention
from repro.models.config import TransformerConfig
from repro.models.layer import FeedForward
from repro.tensor.layers import LayerNorm
from repro.tensor.module import Module

__all__ = ["EfficientTransformerLayer", "PartitionedEfficientLayerExecutor"]

_KINDS = ("linear", "linformer")


class EfficientTransformerLayer(Module):
    """A post-LN transformer layer with a linear/Linformer attention core."""

    def __init__(
        self,
        config: TransformerConfig,
        kind: str = "linear",
        linformer_rank: int = 32,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if config.is_causal:
            raise ValueError(
                "this efficient-layer implementation covers the encoder "
                "(non-causal) setting the paper's models other than GPT-2 use"
            )
        self.config = config
        self.kind = kind
        rng = rng if rng is not None else np.random.default_rng(0)
        self.attention = MultiHeadSelfAttention(
            config.hidden_size, config.num_heads, rng=rng, bias=config.attention_bias
        )
        self.projections = (
            lfm.LinformerProjections.random(linformer_rank, config.max_positions, rng=rng)
            if kind == "linformer"
            else None
        )
        self.ffn = FeedForward(config.hidden_size, config.ffn_dim, config.activation, rng=rng)
        self.ln1 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.ln2 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)

    def _attend_full(self, x: np.ndarray) -> np.ndarray:
        params = self.attention.attention_params()
        if self.kind == "linear":
            return lin.linear_attention_full(x, params)
        return lfm.linformer_full(x, params, self.projections)

    def forward(self, x: np.ndarray) -> np.ndarray:
        attended = self.attention.output(self._attend_full(x))
        y = self.ln1(attended + x)
        return self.ln2(y + self.ffn(y))

    def state_comm_elements(self) -> int:
        """Elements one state All-Reduce moves (the extra cost vs softmax
        Voltage — tiny and N-independent)."""
        cfg = self.config
        if self.kind == "linear":
            return lin.state_elements(cfg.num_heads, cfg.head_dim)
        return lfm.state_elements(cfg.num_heads, self.projections.rank, cfg.head_dim)


class PartitionedEfficientLayerExecutor:
    """Two-phase distributed execution of an :class:`EfficientTransformerLayer`."""

    def __init__(self, layer: EfficientTransformerLayer):
        self.layer = layer
        self.config = layer.config

    def local_state(self, x: np.ndarray, part: Partition):
        """Phase 1 (per device): the state reduced over its own slice."""
        params = self.layer.attention.attention_params()
        if self.layer.kind == "linear":
            return lin.linear_attention_local_state(x, part.start, part.stop, params)
        return lfm.linformer_local_state(
            x, part.start, part.stop, params, self.layer.projections
        )

    def reduce_states(self, states: list):
        """The All-Reduce: states are additive by construction."""
        if not states:
            raise ValueError("need at least one partial state")
        total = states[0]
        for state in states[1:]:
            total = total + state
        return total

    def forward_partition(
        self, x: np.ndarray, part: Partition, state=None
    ) -> np.ndarray:
        """Phase 2 (per device): its output rows, given the reduced state.

        With ``state=None`` the full-sequence state is computed locally —
        the single-device path; in the distributed protocol the caller
        passes the All-Reduced state.
        """
        if part.is_empty:
            return np.zeros((0, self.config.hidden_size), dtype=x.dtype)
        layer = self.layer
        params = layer.attention.attention_params()
        if state is None:
            state = self.local_state(x, Partition(0, x.shape[0]))
        if layer.kind == "linear":
            attended = lin.linear_attention_apply(x, part.start, part.stop, params, state)
        else:
            attended = lfm.linformer_apply(x, part.start, part.stop, params, state)
        xp = x[part.start : part.stop]
        y = layer.ln1(layer.attention.output(attended) + xp)
        return layer.ln2(y + layer.ffn(y))

    def forward_distributed(self, x: np.ndarray, scheme: PartitionScheme) -> np.ndarray:
        """Emulate the whole two-phase protocol and reassemble the output."""
        parts = scheme.positions(x.shape[0])
        state = self.reduce_states([self.local_state(x, p) for p in parts if p.length])
        tiles = [self.forward_partition(x, p, state=state) for p in parts]
        return np.concatenate([t for t in tiles if t.shape[0]], axis=0)
