"""Model compression, orthogonal to distribution (paper Section VII-A).

- :mod:`repro.compress.quantize` — Q8BERT-style simulated int8 weight
  quantization (4× smaller replicas, unchanged execution path);
- :mod:`repro.compress.prune` — attention-head pruning after Michel et al.

Both transforms leave the model a valid input to every system in
:mod:`repro.systems`; the integration tests demonstrate the paper's
orthogonality claim (a compressed model still gains from Voltage, and the
gains compose).
"""

from repro.compress.prune import (
    PruneReport,
    head_importance,
    prune_attention_heads_,
    prune_model_heads_,
)
from repro.compress.quantize import (
    QuantReport,
    QuantizedTensor,
    dequantize_tensor,
    quantize_model_,
    quantize_tensor,
)

__all__ = [
    "PruneReport",
    "QuantReport",
    "QuantizedTensor",
    "dequantize_tensor",
    "head_importance",
    "prune_attention_heads_",
    "prune_model_heads_",
    "quantize_model_",
    "quantize_tensor",
]
