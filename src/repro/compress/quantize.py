"""Post-training int8 weight quantization (Q8BERT-style, Section VII-A).

The paper argues compression and distribution are orthogonal: "compressed
transformer models ... can also leverage Voltage's distributed inference
system for further acceleration, as long as they retain the core
transformer architecture."  This module provides the compression half so
the claim is testable end-to-end.

We implement *simulated* (fake) quantization — weights are rounded to the
symmetric int8 grid and stored dequantized — which is exactly how PyTorch's
post-training quantization evaluates accuracy on hardware without int8
kernels.  The model keeps its float32 execution path, so every system in
:mod:`repro.systems` runs the quantized model unchanged; the int8 payload
size (4× smaller) is what a real deployment would ship to each device.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.tensor.module import Module

__all__ = ["QuantizedTensor", "QuantReport", "quantize_tensor", "dequantize_tensor", "quantize_model_"]

_INT8_MAX = 127


@dataclass(frozen=True)
class QuantizedTensor:
    """Symmetric per-tensor (or per-column) int8 encoding of a weight."""

    values: np.ndarray  # int8
    scale: np.ndarray   # () for per-tensor, (cols,) for per-channel

    @property
    def nbytes(self) -> int:
        """Wire size of the quantized payload (values + scales)."""
        return self.values.nbytes + np.asarray(self.scale, dtype=np.float32).nbytes


def quantize_tensor(weight: np.ndarray, per_channel: bool = False) -> QuantizedTensor:
    """Symmetric int8 quantization: ``q = round(w / s)``, ``s = max|w|/127``.

    ``per_channel=True`` uses one scale per output column (axis -1) — the
    standard choice for linear-layer weights, with markedly lower error on
    tensors whose columns have different dynamic ranges.
    """
    weight = np.asarray(weight)
    if weight.size == 0:
        raise ValueError("cannot quantize an empty tensor")
    if per_channel and weight.ndim >= 2:
        absmax = np.max(np.abs(weight), axis=tuple(range(weight.ndim - 1)))
    else:
        absmax = np.max(np.abs(weight))
    scale = np.where(absmax > 0, absmax / _INT8_MAX, 1.0).astype(np.float32)
    q = np.clip(np.round(weight / scale), -_INT8_MAX, _INT8_MAX).astype(np.int8)
    return QuantizedTensor(values=q, scale=scale)


def dequantize_tensor(quantized: QuantizedTensor, dtype: str = "float32") -> np.ndarray:
    """Back to float: ``w' = q · s`` (the simulated-quantization weights)."""
    return (quantized.values.astype(dtype) * quantized.scale).astype(dtype)


@dataclass
class QuantReport:
    """What quantizing a model did: sizes, per-parameter error, ratio."""

    original_bytes: int = 0
    quantized_bytes: int = 0
    num_tensors: int = 0
    max_abs_error: float = 0.0
    errors: dict[str, float] = field(default_factory=dict)

    @property
    def compression_ratio(self) -> float:
        return self.original_bytes / self.quantized_bytes if self.quantized_bytes else 0.0


def quantize_model_(
    model: Module,
    per_channel: bool = True,
    skip: tuple[str, ...] = ("ln", "layer_norm", "bias", "cls_token", "position"),
) -> QuantReport:
    """In-place fake-quantize every weight matrix of ``model``.

    Layer norms, biases and embeddings' positional tables are kept in
    float32 (standard practice — they are tiny and precision-sensitive);
    any parameter whose dotted name contains one of ``skip`` is left alone.
    Returns a :class:`QuantReport`; the model keeps working with every
    inference system since only the weight *values* changed.
    """
    report = QuantReport()
    for name, param in model.named_parameters():
        report.original_bytes += param.nbytes
        lowered = name.lower()
        if param.data.ndim < 2 or any(token in lowered for token in skip):
            report.quantized_bytes += param.nbytes
            continue
        quantized = quantize_tensor(param.data, per_channel=per_channel)
        restored = dequantize_tensor(quantized, dtype=str(param.data.dtype))
        error = float(np.max(np.abs(restored - param.data)))
        param.copy_(restored)
        report.quantized_bytes += quantized.nbytes
        report.num_tensors += 1
        report.errors[name] = error
        report.max_abs_error = max(report.max_abs_error, error)
    return report
