"""Attention-head pruning (Michel et al., "Are Sixteen Heads Really Better
than One?" — the paper's reference [18]).

Removing heads shrinks the Q/K/V projection width from ``H·F_H`` to
``kept·F_H`` while the residual width stays F — exactly the compressed-model
shape the paper's Section VII-A says still benefits from Voltage.  The
pruned layer drops into every inference system unchanged, and the
partitioned executor reads head geometry from the module, so Theorem 2's
order selection and the FLOP accounting stay correct.

Head importance, absent task gradients, is scored by the weight-magnitude
proxy ``‖W_Q^i‖_F·‖W_K^i‖_F + ‖W_V^i‖_F·‖W_O^i‖_F`` (the two matrix-product
paths a head contributes to).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.models.attention import MultiHeadSelfAttention
from repro.models.base import TransformerModel
from repro.models.layer import TransformerLayer

__all__ = ["PruneReport", "head_importance", "prune_attention_heads_", "prune_model_heads_"]


@dataclass
class PruneReport:
    """Which heads survived, per layer, and the resulting FLOP fraction."""

    kept_heads: list[list[int]]
    original_heads: int

    @property
    def kept_fraction(self) -> float:
        total = sum(len(kept) for kept in self.kept_heads)
        return total / (self.original_heads * len(self.kept_heads))


def head_importance(attention: MultiHeadSelfAttention) -> np.ndarray:
    """Magnitude-proxy importance score per head (higher = keep)."""
    h, fh = attention.num_heads, attention.head_dim
    scores = np.zeros(h)
    for i in range(h):
        cols = slice(i * fh, (i + 1) * fh)
        wq = attention.query.weight.data[:, cols]
        wk = attention.key.weight.data[:, cols]
        wv = attention.value.weight.data[:, cols]
        wo = attention.output.weight.data[cols, :]
        scores[i] = (
            np.linalg.norm(wq) * np.linalg.norm(wk)
            + np.linalg.norm(wv) * np.linalg.norm(wo)
        )
    return scores


def prune_attention_heads_(layer: TransformerLayer, keep: list[int]) -> None:
    """In-place: replace the layer's attention with one keeping ``keep`` heads.

    ``keep`` is a list of head indices (order preserved after sorting);
    sliced Q/K/V columns and output-projection rows are copied over, and all
    biases are preserved (the output bias is head-independent).
    """
    attention = layer.attention
    h, fh = attention.num_heads, attention.head_dim
    keep = sorted(set(keep))
    if not keep:
        raise ValueError("must keep at least one attention head")
    if keep[0] < 0 or keep[-1] >= h:
        raise ValueError(f"head indices {keep} out of range for H={h}")

    cols = np.concatenate([np.arange(i * fh, (i + 1) * fh) for i in keep])
    pruned = MultiHeadSelfAttention(
        attention.hidden_size,
        num_heads=len(keep),
        head_dim=fh,
        bias=attention.query.bias is not None,
    )
    pruned.query.weight.copy_(attention.query.weight.data[:, cols])
    pruned.key.weight.copy_(attention.key.weight.data[:, cols])
    pruned.value.weight.copy_(attention.value.weight.data[:, cols])
    pruned.output.weight.copy_(attention.output.weight.data[cols, :])
    if attention.query.bias is not None:
        pruned.query.bias.copy_(attention.query.bias.data[cols])
        pruned.key.bias.copy_(attention.key.bias.data[cols])
        pruned.value.bias.copy_(attention.value.bias.data[cols])
        pruned.output.bias.copy_(attention.output.bias.data)
    layer.attention = pruned


def prune_model_heads_(
    model: TransformerModel, keep_fraction: float = 0.5
) -> PruneReport:
    """Prune every layer to its top-``keep_fraction`` heads by importance."""
    if not (0 < keep_fraction <= 1):
        raise ValueError(f"keep_fraction must be in (0, 1], got {keep_fraction}")
    kept_per_layer = []
    original = model.layers[0].attention.num_heads
    for layer in model.layers:
        scores = head_importance(layer.attention)
        keep_count = max(1, round(keep_fraction * len(scores)))
        keep = sorted(np.argsort(scores)[::-1][:keep_count].tolist())
        prune_attention_heads_(layer, keep)
        kept_per_layer.append(keep)
    return PruneReport(kept_heads=kept_per_layer, original_heads=original)
