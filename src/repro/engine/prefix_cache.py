"""Cross-request prefix cache: a refcounted radix trie over retained KV slots.

Requests in real serving share prompt prefixes — per-tenant system
preambles, few-shot headers, conversation history — and re-prefilling the
shared part is pure redone work.  This module keys *retained* slots
(:meth:`~repro.engine.slots.SlotPool.release` with ``retain=True``) by
their prompt token ids in a compressed radix trie, so a new request can
find the longest cached prefix of its prompt in O(|prompt|) and seed its
slot with a byte-exact copy of those rows instead of recomputing them.

Design points (INTERNALS §16 has the full story):

- **Prompt rows only.**  Entries hold prefill rows, never decode rows: the
  engine truncates a slot to its prompt length before retaining it.  Batch
  (t >= 2) GEMM rows are bit-stable across batch shapes, single-row decode
  GEMV rows are not — so only prefill rows are safely reusable if outputs
  must stay bit-identical to ``generate_cached``.
- **Capped matches.**  :meth:`match` never returns more than ``limit``
  tokens (the engine passes ``len(prompt) - 2``), so the suffix re-prefill
  is always a multi-row GEMM — same bit-stability argument.
- **Refcounts guard the copy window.**  :meth:`pin`/:meth:`unpin` (or the
  :meth:`pinned` context manager) protect an entry while its rows are being
  copied; eviction only ever removes refcount-0 entries, so a donor can
  never be reclaimed mid-copy.  Pins are transient, which is what makes
  refcount-0-only eviction deadlock-free: by the time the engine needs a
  victim, nothing is pinned.
- **LRU eviction, explicit recycling.**  :meth:`evict_lru` removes the
  least-recently-used refcount-0 entry and returns it; the caller reclaims
  its slot (checkout for a new request, or back to the free list).  Entries
  displaced by a subsuming :meth:`insert` are recycled through the
  ``on_release`` callback.

The trie itself is standard compressed-radix: edges are token-id runs,
nodes exist only on entry paths, and the longest-common-prefix walk equals
a brute-force max-common-prefix scan over all entries (property-tested
with Hypothesis in ``tests/engine/test_prefix_cache.py``).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Sequence
from contextlib import contextmanager
from dataclasses import dataclass, replace

__all__ = ["PrefixEntry", "PrefixCacheStats", "RadixPrefixCache"]


@dataclass
class PrefixEntry:
    """One retained slot keyed by the token ids its cached rows cover."""

    key: tuple[int, ...]
    slot: object  # the retained KVSlot (opaque to the trie)
    refcount: int = 0
    stamp: int = 0  # LRU clock: bumped on insert and on every match served
    hits: int = 0


@dataclass
class PrefixCacheStats:
    """Monotonic counters; snapshot/delta give per-run views."""

    hits: int = 0
    misses: int = 0
    inserts: int = 0
    displaced: int = 0  # entries removed because a longer key subsumed them
    evictions: int = 0
    positions_saved: int = 0  # prefill positions served from cache copies

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def snapshot(self) -> "PrefixCacheStats":
        return replace(self)

    def delta(self, since: "PrefixCacheStats") -> "PrefixCacheStats":
        return PrefixCacheStats(
            hits=self.hits - since.hits,
            misses=self.misses - since.misses,
            inserts=self.inserts - since.inserts,
            displaced=self.displaced - since.displaced,
            evictions=self.evictions - since.evictions,
            positions_saved=self.positions_saved - since.positions_saved,
        )

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "inserts": self.inserts,
            "displaced": self.displaced,
            "evictions": self.evictions,
            "positions_saved": self.positions_saved,
        }


class _Node:
    """Trie node: ``edge`` labels the run of token ids from its parent."""

    __slots__ = ("edge", "children", "entry")

    def __init__(self, edge: tuple[int, ...] = ()):
        self.edge = edge
        self.children: dict[int, _Node] = {}  # first edge token -> child
        self.entry: PrefixEntry | None = None


def _common_len(a: Sequence[int], b: Sequence[int]) -> int:
    n = min(len(a), len(b))
    i = 0
    while i < n and a[i] == b[i]:
        i += 1
    return i


class RadixPrefixCache:
    """Longest-prefix lookup over retained slots, refcounted against reuse.

    ``min_match`` is the shortest prefix worth serving from cache (a 1-row
    copy saves almost nothing but is still correct — the floor mainly keeps
    stats honest).  ``on_release(slot)`` is invoked for every slot this
    cache lets go of through dedup displacement or rejected inserts; the
    engine binds it to ``pool.reclaim`` so parked slots flow back to free.
    """

    def __init__(
        self,
        min_match: int = 1,
        on_release: Callable[[object], object] | None = None,
    ):
        if min_match < 1:
            raise ValueError(f"min_match must be >= 1, got {min_match}")
        self.min_match = min_match
        self.stats = PrefixCacheStats()
        self._on_release = on_release if on_release is not None else (lambda slot: slot)
        self._root = _Node()
        self._entries: list[PrefixEntry] = []
        self._clock = 0

    # -- introspection ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def entries(self) -> list[PrefixEntry]:
        return list(self._entries)

    def keys(self) -> list[tuple[int, ...]]:
        return [entry.key for entry in self._entries]

    def evictable(self) -> bool:
        """Whether :meth:`evict_lru` could currently free a slot."""
        return any(entry.refcount == 0 for entry in self._entries)

    # -- refcounting -----------------------------------------------------------

    def pin(self, entry: PrefixEntry) -> None:
        entry.refcount += 1

    def unpin(self, entry: PrefixEntry) -> None:
        if entry.refcount <= 0:
            raise ValueError(
                f"unpin without matching pin on entry {entry.key[:4]}…"
            )
        entry.refcount -= 1

    @contextmanager
    def pinned(self, entry: PrefixEntry):
        """Hold a refcount over the match→copy window."""
        self.pin(entry)
        try:
            yield entry
        finally:
            self.unpin(entry)

    # -- lookup ----------------------------------------------------------------

    def match(
        self, ids: Iterable[int], limit: int | None = None
    ) -> tuple[PrefixEntry, int] | None:
        """The longest cached prefix of ``ids`` (capped at ``limit`` tokens),
        as ``(entry, length)`` where ``entry.slot`` holds at least ``length``
        valid rows — or None (counted as a miss) if nothing reaches
        ``min_match``.  Serving a match bumps the entry's LRU stamp."""
        key = tuple(int(t) for t in ids)
        if limit is not None:
            key = key[: max(limit, 0)]
        node, depth = self._root, 0
        while depth < len(key):
            child = node.children.get(key[depth])
            if child is None:
                break
            consumed = _common_len(child.edge, key[depth:])
            depth += consumed
            node = child
            if consumed < len(child.edge):
                break  # diverged mid-edge; everything below shares key[:depth]
        if depth < self.min_match or node is self._root:
            self.stats.misses += 1
            return None
        entry = self._subtree_entry(node)
        self.stats.hits += 1
        self.stats.positions_saved += depth
        entry.hits += 1
        entry.stamp = self._tick()
        return entry, depth

    def _subtree_entry(self, node: _Node) -> PrefixEntry:
        """Any entry at or below ``node`` (deterministic: smallest edge token
        first).  Every node lies on at least one entry's path, so this
        always terminates at an entry."""
        while node.entry is None:
            node = node.children[min(node.children)]
        return node.entry

    def _tick(self) -> int:
        self._clock += 1
        return self._clock

    # -- insertion -------------------------------------------------------------

    def insert(self, key: Iterable[int], slot: object) -> PrefixEntry | None:
        """Retain ``slot`` (holding one cached row per token of ``key``)
        under ``key``.  Returns the new entry, or None when an existing
        entry already covers the key — the slot is then handed back through
        ``on_release``.  Existing unpinned entries whose keys are strict
        prefixes of ``key`` are displaced (their slots released too): the
        longer entry serves every lookup the shorter one could."""
        key = tuple(int(t) for t in key)
        if len(key) < self.min_match:
            self._on_release(slot)
            return None
        for existing in self._entries:
            if len(existing.key) >= len(key) and existing.key[: len(key)] == key:
                existing.stamp = self._tick()  # the cover stays warm
                self._on_release(slot)
                return None
        for existing in [
            e
            for e in self._entries
            if len(e.key) < len(key)
            and e.refcount == 0
            and key[: len(e.key)] == e.key
        ]:
            self._remove(existing)
            self.stats.displaced += 1
            self._on_release(existing.slot)
        entry = PrefixEntry(key=key, slot=slot, stamp=self._tick())
        self._insert_node(entry)
        self._entries.append(entry)
        self.stats.inserts += 1
        return entry

    def _insert_node(self, entry: PrefixEntry) -> None:
        node, depth = self._root, 0
        key = entry.key
        while True:
            remaining = key[depth:]
            if not remaining:
                node.entry = entry  # exact-path terminal (shorter-key node split)
                return
            child = node.children.get(remaining[0])
            if child is None:
                leaf = _Node(edge=remaining)
                leaf.entry = entry
                node.children[remaining[0]] = leaf
                return
            consumed = _common_len(child.edge, remaining)
            if consumed == len(child.edge):
                node, depth = child, depth + consumed
                continue
            # split the edge at the divergence point
            mid = _Node(edge=child.edge[:consumed])
            child.edge = child.edge[consumed:]
            mid.children[child.edge[0]] = child
            node.children[mid.edge[0]] = mid
            node, depth = mid, depth + consumed

    # -- removal ---------------------------------------------------------------

    def remove(self, entry: PrefixEntry) -> None:
        """Drop an entry explicitly (its slot is NOT released — caller's)."""
        if entry.refcount != 0:
            raise ValueError(
                f"cannot remove pinned entry (refcount {entry.refcount})"
            )
        self._remove(entry)

    def _remove(self, entry: PrefixEntry) -> None:
        self._entries.remove(entry)
        # walk the exact path, recording parents for pruning
        path: list[tuple[_Node, _Node]] = []  # (parent, child) pairs
        node, depth = self._root, 0
        while depth < len(entry.key):
            child = node.children[entry.key[depth]]
            path.append((node, child))
            depth += len(child.edge)
            node = child
        if node.entry is not entry:
            raise AssertionError(f"trie desync: entry {entry.key[:4]}… not at its node")
        node.entry = None
        # prune empty leaves upward, then merge single-child pass-through nodes
        for parent, child in reversed(path):
            if child.entry is None and not child.children:
                del parent.children[child.edge[0]]
            elif child.entry is None and len(child.children) == 1:
                only = next(iter(child.children.values()))
                only.edge = child.edge + only.edge
                parent.children[only.edge[0]] = only  # replaces child (same first id)
                break
            else:
                break

    # -- eviction --------------------------------------------------------------

    def evict_lru(self) -> PrefixEntry | None:
        """Remove and return the least-recently-used refcount-0 entry (None
        when everything is pinned or the cache is empty).  The caller owns
        the returned entry's slot — typically ``pool.reclaim(entry.slot)``."""
        victims = [entry for entry in self._entries if entry.refcount == 0]
        if not victims:
            return None
        entry = min(victims, key=lambda e: e.stamp)
        self._remove(entry)
        self.stats.evictions += 1
        return entry
