"""Engine time sources: deterministic virtual time or dilated wall time.

The engine replays an arrival stream against a clock.  Two implementations
share one tiny interface:

- :class:`VirtualClock` — simulated seconds.  ``advance`` charges service
  time explicitly (from a deterministic step-cost model) and ``wait_until``
  jumps straight to the next event, so a whole soak run takes milliseconds
  of wall time and every scheduling decision is reproducible bit-for-bit
  across hosts.  This is the default, and the only mode the CI soak lane
  and the ``serve`` bench use.
- :class:`WallClock` — real elapsed time via ``time.perf_counter``, with an
  optional ``dilation`` factor (2.0 = arrival timestamps replay twice as
  fast).  ``advance`` is a no-op because real time already passed while the
  model computed; ``wait_until`` sleeps.  Use this to demo the engine
  against live load.

Both clocks report time in *request-stream seconds* — the same time base as
``Request.arrival`` / ``Request.deadline`` — so the scheduler never needs
to know which mode it is running under.
"""

from __future__ import annotations

import time

__all__ = ["VirtualClock", "WallClock"]


class VirtualClock:
    """Deterministic simulated time; the engine's default time source."""

    is_virtual = True

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> None:
        """Charge ``seconds`` of simulated service time."""
        if seconds < 0:
            raise ValueError(f"cannot advance time by {seconds} s")
        self._now += seconds

    def wait_until(self, deadline: float) -> None:
        """Jump to ``deadline`` (no-op if it already passed)."""
        self._now = max(self._now, deadline)


class WallClock:
    """Real time, optionally dilated so recorded traces replay faster."""

    is_virtual = False

    def __init__(self, dilation: float = 1.0):
        if dilation <= 0:
            raise ValueError(f"dilation must be > 0, got {dilation}")
        self.dilation = dilation
        self._origin = time.perf_counter()

    def now(self) -> float:
        return (time.perf_counter() - self._origin) * self.dilation

    def advance(self, seconds: float) -> None:
        """No-op: wall time already elapsed while the work ran."""

    def wait_until(self, deadline: float) -> None:
        remaining = deadline - self.now()
        if remaining > 0:
            time.sleep(remaining / self.dilation)
