"""Draft-then-verify speculative decoding, bit-identical under greedy
exact-match acceptance.

The engine's base decode emits one token per forward, so serving throughput
is bounded by sequential small-GEMM latency — the regime edge devices live
in.  Speculative decoding breaks the sequential chain: a cheap *proposer*
guesses the next ``k`` tokens, the target model scores the pending token
plus all ``k`` guesses in **one** batched cached forward
(:meth:`~repro.models.gpt2.GPT2Model.logits_cached` with
``all_positions=True``), and the longest prefix of guesses that matches the
target's own greedy argmaxes is accepted.  Rejected positions are rolled
back with ``LayerKVCache.truncate`` — the same shrink-only rollback
preemption already uses.

Why outputs stay bit-identical to ``generate_cached`` (proof sketch in
INTERNALS §16): acceptance is *exact argmax match*, so every emitted token
equals the target's greedy choice given the same committed ids; the argmax
is computed from a batched forward rather than ``k`` sequential ones, which
permutes BLAS reduction shapes but in practice never flips an argmax (the
soak tests assert equality token-for-token against offline
``generate_cached`` across interleaving, preemption and both proposers).
A round that drafts nothing degenerates to the base sequencer's single
one-position forward — op-for-op identical.

Two proposers ship:

- :class:`NgramProposer` — self-drafting: assume the sequence keeps
  following its own most recent repeated suffix.  Free (no model), and
  surprisingly strong on greedy decodes, which settle into repetition
  attractors.
- :class:`DraftModelProposer` — a smaller GPT-2 sharing the tokenizer /
  vocab (typically :meth:`GPT2Model.truncated_draft`: the target's first
  layers by reference) drafts ``k`` greedy tokens through its own KV cache,
  resynchronised against the committed ids by longest-common-prefix
  truncation each round.  Draft forwards affect only *which* tokens get
  proposed — never what the target accepts — so draft-side float wobble
  cannot touch output correctness.

Virtual-time honesty: a verify over ``1 + k`` positions is charged
``step_cost(1 + k, cache_len)``, so the serve bench's speedup is the cost
model's own amortisation of the per-forward launch overhead, not an
accounting trick.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.engine.sequencer import GPT2CachedSequencer, _DecodeState
from repro.obs.metrics import get_registry
from repro.serving.arrivals import Request
from repro.engine.slots import KVSlot

__all__ = [
    "DraftModelProposer",
    "NgramProposer",
    "SpeculativeSequencer",
    "SpeculativeStats",
]


@dataclass
class SpeculativeStats:
    """Monotonic counters over every decode the sequencer runs."""

    forwards: int = 0  # decode verify forwards (prefills excluded)
    rounds: int = 0  # forwards that carried >= 1 drafted token
    drafted: int = 0
    accepted: int = 0
    emitted: int = 0  # tokens committed by decode steps (pending + accepted)

    @property
    def acceptance_rate(self) -> float:
        return self.accepted / self.drafted if self.drafted else 0.0

    @property
    def tokens_per_forward(self) -> float:
        return self.emitted / self.forwards if self.forwards else 0.0

    def snapshot(self) -> "SpeculativeStats":
        return replace(self)

    def delta(self, since: "SpeculativeStats") -> "SpeculativeStats":
        return SpeculativeStats(
            forwards=self.forwards - since.forwards,
            rounds=self.rounds - since.rounds,
            drafted=self.drafted - since.drafted,
            accepted=self.accepted - since.accepted,
            emitted=self.emitted - since.emitted,
        )

    def as_dict(self) -> dict:
        return {
            "forwards": self.forwards,
            "rounds": self.rounds,
            "drafted": self.drafted,
            "accepted": self.accepted,
            "emitted": self.emitted,
            "acceptance_rate": self.acceptance_rate,
            "tokens_per_forward": self.tokens_per_forward,
        }


class NgramProposer:
    """Self-drafting: continue the sequence's most recent repeated suffix.

    Greedy decodes of small LMs fall into repetition attractors — once a
    cycle starts, the continuation after an earlier occurrence of the
    current suffix *is* the next token.  The proposer looks for the longest
    suffix (up to ``max_order`` tokens) that occurred earlier, takes what
    followed its most recent earlier occurrence, and cycles it out to ``k``
    guesses.  No model, no state, no allocation.
    """

    name = "ngram"

    def __init__(self, max_order: int = 3):
        if max_order < 1:
            raise ValueError(f"max_order must be >= 1, got {max_order}")
        self.max_order = max_order

    def begin(self, ids: list[int]) -> None:
        return None

    def propose(self, dstate: None, ids: list[int], k: int) -> list[int]:
        if k <= 0 or len(ids) < 2:
            return []
        for order in range(min(self.max_order, len(ids) - 1), 0, -1):
            suffix = ids[-order:]
            # most recent earlier occurrence (strictly before the suffix itself)
            for j in range(len(ids) - order - 1, -1, -1):
                if ids[j:j + order] == suffix:
                    continuation = ids[j + order:]
                    while len(continuation) < k:  # cycle-pad the attractor
                        continuation = continuation + continuation
                    return continuation[:k]
        return []


@dataclass
class _DraftDecode:
    """Per-request draft-model state: its own KV cache over committed ids."""

    cache: object  # KVCache
    workspace: object
    ids: list[int]  # the ids whose rows the cache currently holds


class DraftModelProposer:
    """A smaller same-vocab GPT-2 drafts ``k`` greedy tokens per round.

    The draft keeps its own per-request KV cache (one small allocation per
    request, like offline ``generate_cached`` itself — the *slot pool's*
    zero-allocation invariant is untouched).  Each round it resynchronises
    by truncating to the longest common prefix of its cached ids and the
    committed ids (drafts the target rejected simply fall off), catches up
    on committed tokens in one batched forward, then rolls ``k`` greedy
    steps ahead.
    """

    name = "draft-model"

    def __init__(self, model):
        if model.num_layers < 1:
            raise ValueError("draft model needs at least one layer")
        self.model = model

    def begin(self, ids: list[int]) -> _DraftDecode:
        from repro.models.cache import KVCache
        from repro.tensor.workspace import Workspace

        return _DraftDecode(
            cache=KVCache.empty(self.model.num_layers, self.model.config.max_positions),
            workspace=Workspace(),
            ids=[],
        )

    def propose(self, dstate: _DraftDecode, ids: list[int], k: int) -> list[int]:
        model = self.model
        max_positions = model.config.max_positions
        k = min(k, max_positions - len(ids))
        if k <= 0:
            return []
        # resync: keep only rows matching the committed ids, and always leave
        # the last committed token to forward (its logits are what we draft from)
        common = 0
        bound = min(len(dstate.ids), len(ids) - 1)
        while common < bound and dstate.ids[common] == ids[common]:
            common += 1
        if common < len(dstate.ids):
            for layer_cache in dstate.cache.layers:
                layer_cache.truncate(common)
            del dstate.ids[common:]
        drafts: list[int] = []
        new = ids[common:]
        while len(drafts) < k:
            logits = model.logits_cached(
                new, len(dstate.ids), dstate.cache.layers, workspace=dstate.workspace
            )
            dstate.ids.extend(new)
            guess = int(np.argmax(logits))
            drafts.append(guess)
            new = [guess]
        return drafts


@dataclass
class _SpecDecodeState(_DecodeState):
    draft: object = None  # proposer-owned per-request state


class SpeculativeSequencer(GPT2CachedSequencer):
    """Greedy decoding where each engine step is one draft–verify round.

    Drop-in for :class:`GPT2CachedSequencer` (same prompts, same offline
    reference, same prefix-cache support): prefill is inherited unchanged,
    and every decode step (a) commits the pending token, (b) asks the
    proposer for up to ``lookahead`` guesses, (c) verifies pending+guesses
    in one batched forward, (d) commits the longest argmax-matching guess
    prefix and truncates the rejected rows.  The step still returns one
    ``(done, cost)`` — it just may commit several tokens.
    """

    def __init__(self, model, proposer=None, lookahead: int = 4, **kwargs):
        super().__init__(model, **kwargs)
        if lookahead < 1:
            raise ValueError(f"lookahead must be >= 1, got {lookahead}")
        self.proposer = proposer if proposer is not None else NgramProposer()
        self.lookahead = lookahead
        self.stats = SpeculativeStats()

    def begin(
        self,
        request: Request,
        prompt: np.ndarray,
        slot: KVSlot,
        cached_prefix: int = 0,
    ) -> _SpecDecodeState:
        base = super().begin(request, prompt, slot, cached_prefix=cached_prefix)
        state = _SpecDecodeState(**base.__dict__)
        state.draft = self.proposer.begin(state.ids)
        return state

    def step(self, state: _SpecDecodeState) -> tuple[bool, float | None]:
        if not state.prefilled or state.done:
            return super().step(state)  # prefill (or the finished-state error)
        max_positions = self.model.config.max_positions
        stats = self.stats
        ids = state.ids
        # commit the pending token — one iteration of generate_cached's loop
        ids.append(state.next_id)
        state.emitted += 1
        stats.emitted += 1
        if state.emitted >= self.max_new_tokens or len(ids) >= max_positions:
            state.done = True
            return True, 0.0 if self.step_cost is not None else None
        # budget: never draft past max_new (the final pending token is always
        # committed without a forward, exactly like the base loop) or past
        # the model's position budget
        budget = min(
            self.lookahead,
            self.max_new_tokens - state.emitted - 1,
            max_positions - len(ids),
        )
        draft = (
            [int(t) for t in self.proposer.propose(state.draft, ids, budget)][:budget]
            if budget > 0
            else []
        )
        cache_len = len(ids) - 1  # rows the slot holds entering the round
        cost = self._cost(1 + len(draft), cache_len)
        if draft:
            logits = self._forward(state, [ids[-1]] + draft, cache_len, all_positions=True)
            guesses = np.argmax(logits, axis=-1)
        else:
            # no guesses: run the base sequencer's exact one-position forward
            # (same GEMV head), op-identical to non-speculative decode
            guesses = np.array(
                [int(np.argmax(self._forward(state, [ids[-1]], cache_len)))]
            )
        accepted = 0
        while accepted < len(draft) and int(guesses[accepted]) == draft[accepted]:
            accepted += 1
        ids.extend(draft[:accepted])
        state.emitted += accepted
        # roll back the rejected rows; rows for accepted tokens stay
        state.slot.truncate(len(ids))
        state.next_id = int(guesses[accepted])
        stats.forwards += 1
        stats.drafted += len(draft)
        stats.accepted += accepted
        stats.emitted += accepted
        if draft:
            stats.rounds += 1
            registry = get_registry()
            registry.counter("engine.speculative.drafted_total").inc(len(draft))
            registry.counter("engine.speculative.accepted_total").inc(accepted)
        get_registry().counter("engine.speculative.forwards_total").inc()
        if len(ids) >= max_positions:
            # generate_cached breaks before committing the next pending token
            state.done = True
            return True, cost
        return False, cost
