"""Online inference engine: continuous batching, SLO scheduling, shedding.

The analytic :mod:`repro.serving` package answers "what latency *would*
each deployment see" with queueing models; this package actually executes
models under live request streams.  The pieces:

- :mod:`repro.engine.clock` — deterministic virtual time or dilated wall
  time (one interface, so soak tests replay hours of traffic in ms);
- :mod:`repro.engine.slots` — a bounded pool of preallocated KV-cache
  slots (``LayerKVCache.truncate`` recycling, no steady-state allocation);
- :mod:`repro.engine.scheduler` — bounded admission queue with FIFO /
  priority / EDF ordering and explicit load shedding;
- :mod:`repro.engine.sequencer` — per-request execution state machines:
  KV-cached GPT-2 greedy decode (bit-identical to the offline
  ``generate_cached``) and the threaded distributed Voltage forward;
- :mod:`repro.engine.engine` — the worker loop tying them together, fully
  instrumented through :mod:`repro.obs`.

Quick start::

    from repro import engine
    from repro.serving.arrivals import poisson_arrivals

    seq = engine.GPT2CachedSequencer(model, max_new_tokens=8,
                                     step_cost=lambda t, n: 0.01 * t + 0.002)
    eng = engine.InferenceEngine(seq, engine.EngineConfig(num_slots=4))
    report = eng.run(poisson_arrivals(100, rate=5.0, n_tokens=16))
    print(report.stats().summary(), f"shed {report.shed_rate:.0%}")
"""

from repro.engine.clock import VirtualClock, WallClock
from repro.engine.engine import (
    CompletedRequest,
    EngineConfig,
    EngineReport,
    EngineStalledError,
    InferenceEngine,
)
from repro.engine.prefix_cache import PrefixCacheStats, PrefixEntry, RadixPrefixCache
from repro.engine.scheduler import POLICIES, Scheduler, ShedRequest
from repro.engine.sequencer import (
    DecodeSession,
    GPT2CachedSequencer,
    VoltageDecodeSequencer,
    VoltageForwardSequencer,
)
from repro.engine.slots import KVSlot, SlotPool
from repro.engine.speculative import (
    DraftModelProposer,
    NgramProposer,
    SpeculativeSequencer,
    SpeculativeStats,
)

__all__ = [
    "CompletedRequest",
    "DraftModelProposer",
    "EngineConfig",
    "EngineReport",
    "EngineStalledError",
    "DecodeSession",
    "GPT2CachedSequencer",
    "InferenceEngine",
    "KVSlot",
    "NgramProposer",
    "POLICIES",
    "PrefixCacheStats",
    "PrefixEntry",
    "RadixPrefixCache",
    "Scheduler",
    "ShedRequest",
    "SlotPool",
    "SpeculativeSequencer",
    "SpeculativeStats",
    "VirtualClock",
    "VoltageDecodeSequencer",
    "VoltageForwardSequencer",
    "WallClock",
]
