"""Bounded pool of preallocated KV-cache slots for in-flight decodes.

The engine's memory story (INTERNALS §10): a fixed number of *slots*, each
owning one :class:`~repro.models.cache.LayerKVCache` per model layer plus a
:class:`~repro.tensor.workspace.Workspace` for per-step scratch.  A request
occupies exactly one slot from prefill to completion; when it finishes (or
is preempted/cancelled) the slot's caches are rolled back with
``truncate(0)`` — the backing buffers and the workspace survive, so the
next request appends into memory that was allocated once, early in the
engine's life (the PR 3 capacity-hint machinery does the sizing).

The pool is the engine's *admission currency*: a decode cannot start
without a slot, and a saturated pool is what turns arrivals into queueing
and — past the queue bound — into load shedding.

**Retention** (INTERNALS §16): with ``retained_slots > 0`` the pool holds
that many *extra* physical slots beyond the concurrency bound, and
``release(slot, retain=True)`` parks a finished slot *untruncated* instead
of recycling it — the prefix cache keys those parked prompt rows so later
requests can :meth:`KVSlot.copy_prefix_from` them instead of re-prefilling.
Concurrency stays capped at ``num_slots``: :meth:`acquire` never hands out
more than that many slots at once, and a retained slot re-enters service
only through :meth:`reclaim` (which is where eviction lands).  Buffers are
never freed either way, so the zero-steady-state-allocation invariant
(``allocations()`` flat across runs) holds with retention enabled.
"""

from __future__ import annotations

import threading

from repro.models.cache import LayerKVCache
from repro.tensor.workspace import Workspace

__all__ = ["KVSlot", "SlotPool"]


class KVSlot:
    """One slot: per-layer caches + scratch workspace + a reuse generation."""

    def __init__(self, index: int, num_layers: int, capacity: int):
        self.index = index
        self.caches = [LayerKVCache(capacity=capacity) for _ in range(num_layers)]
        self.workspace = Workspace()
        self.generation = 0  # bumped on every recycle; stale holders can detect reuse

    @property
    def length(self) -> int:
        return self.caches[0].length if self.caches else 0

    def truncate(self, length: int) -> None:
        """Roll every layer cache back to ``length`` valid rows (shrink-only)."""
        for cache in self.caches:
            cache.truncate(length)

    def copy_prefix_from(self, donor: "KVSlot", length: int) -> None:
        """Seed this (empty) slot with the first ``length`` cached rows of
        ``donor`` — a byte-exact copy into this slot's own preallocated
        buffers, so the donor stays immutable and refcounting stays simple
        (no cross-slot aliasing to invalidate)."""
        if self.length != 0:
            raise ValueError(
                f"slot {self.index} must be empty to seed a prefix (length {self.length})"
            )
        if length < 0 or length > donor.length:
            raise ValueError(
                f"cannot copy {length} rows from donor slot {donor.index} "
                f"holding {donor.length}"
            )
        if length == 0:
            return
        for mine, theirs in zip(self.caches, donor.caches):
            mine.append(theirs.k[:, :length], theirs.v[:, :length])

    def reset(self) -> None:
        """Roll every layer cache back to empty, keeping the buffers."""
        self.truncate(0)
        self.generation += 1

    def allocations(self) -> int:
        """Total backing-buffer allocations across the slot's caches."""
        return sum(cache.allocations for cache in self.caches)


class SlotPool:
    """Fixed-size pool; acquire/release is thread-safe and non-blocking.

    ``num_layers`` may be 0 for sequencers that keep no per-request model
    state (e.g. the one-shot Voltage forward path) — the pool then only
    bounds concurrency.

    ``retained_slots`` adds physical slots that exist purely to park
    finished KV state for the prefix cache; at most ``num_slots`` slots are
    ever checked out concurrently regardless.
    """

    def __init__(
        self, num_slots: int, num_layers: int, capacity: int, retained_slots: int = 0
    ):
        if num_slots < 1:
            raise ValueError(f"need >= 1 slot, got {num_slots}")
        if num_layers < 0 or capacity < 1:
            raise ValueError(
                f"invalid slot geometry: num_layers={num_layers}, capacity={capacity}"
            )
        if retained_slots < 0:
            raise ValueError(f"retained_slots must be >= 0, got {retained_slots}")
        self.num_slots = num_slots
        self.retained_slots = retained_slots
        self.capacity = capacity
        self._lock = threading.Lock()
        self._slots = [
            KVSlot(i, num_layers, capacity) for i in range(num_slots + retained_slots)
        ]
        self._free = list(reversed(self._slots))  # pop() hands out slot 0 first
        self._in_use: set[int] = set()
        self._retained: set[int] = set()

    @property
    def in_use(self) -> int:
        with self._lock:
            return len(self._in_use)

    @property
    def num_free(self) -> int:
        with self._lock:
            return len(self._free)

    @property
    def num_retained(self) -> int:
        with self._lock:
            return len(self._retained)

    def acquire(self) -> KVSlot | None:
        """A free slot, or None when no clean slot is free or the
        concurrency bound ``num_slots`` is met (never blocks)."""
        with self._lock:
            if not self._free or len(self._in_use) >= self.num_slots:
                return None
            slot = self._free.pop()
            self._in_use.add(slot.index)
            return slot

    def release(self, slot: KVSlot, retain: bool = False) -> None:
        """Recycle a slot — or, with ``retain=True``, park it with its cached
        rows intact for the prefix cache (the caller keys them)."""
        with self._lock:
            if slot.index not in self._in_use:
                raise ValueError(f"slot {slot.index} is not checked out")
            self._in_use.remove(slot.index)
            if retain:
                if slot.length == 0:
                    raise ValueError(
                        f"slot {slot.index} has no cached rows to retain"
                    )
                self._retained.add(slot.index)
            else:
                slot.reset()
                self._free.append(slot)

    def reclaim(self, slot: KVSlot, checkout: bool = False) -> KVSlot:
        """Take a retained slot back into service: its rows are dropped and
        it either returns to the free list or (``checkout=True``) is handed
        straight out as an acquired slot — the eviction path."""
        with self._lock:
            if slot.index not in self._retained:
                raise ValueError(f"slot {slot.index} is not retained")
            if checkout and len(self._in_use) >= self.num_slots:
                # check before mutating: a refused checkout must leave the
                # slot parked, not orphaned outside every pool set
                raise RuntimeError(
                    f"cannot check out reclaimed slot {slot.index}: "
                    f"{len(self._in_use)} slots already in use (bound {self.num_slots})"
                )
            self._retained.remove(slot.index)
            slot.reset()
            if checkout:
                self._in_use.add(slot.index)
            else:
                self._free.append(slot)
            return slot

    def allocations(self) -> int:
        """Backing allocations across all slots (steady state: one per cache)."""
        return sum(slot.allocations() for slot in self._slots)
