"""Bounded pool of preallocated KV-cache slots for in-flight decodes.

The engine's memory story (INTERNALS §10): a fixed number of *slots*, each
owning one :class:`~repro.models.cache.LayerKVCache` per model layer plus a
:class:`~repro.tensor.workspace.Workspace` for per-step scratch.  A request
occupies exactly one slot from prefill to completion; when it finishes (or
is preempted/cancelled) the slot's caches are rolled back with
``truncate(0)`` — the backing buffers and the workspace survive, so the
next request appends into memory that was allocated once, early in the
engine's life (the PR 3 capacity-hint machinery does the sizing).

The pool is the engine's *admission currency*: a decode cannot start
without a slot, and a saturated pool is what turns arrivals into queueing
and — past the queue bound — into load shedding.
"""

from __future__ import annotations

import threading

from repro.models.cache import LayerKVCache
from repro.tensor.workspace import Workspace

__all__ = ["KVSlot", "SlotPool"]


class KVSlot:
    """One slot: per-layer caches + scratch workspace + a reuse generation."""

    def __init__(self, index: int, num_layers: int, capacity: int):
        self.index = index
        self.caches = [LayerKVCache(capacity=capacity) for _ in range(num_layers)]
        self.workspace = Workspace()
        self.generation = 0  # bumped on every recycle; stale holders can detect reuse

    @property
    def length(self) -> int:
        return self.caches[0].length if self.caches else 0

    def reset(self) -> None:
        """Roll every layer cache back to empty, keeping the buffers."""
        for cache in self.caches:
            cache.truncate(0)
        self.generation += 1

    def allocations(self) -> int:
        """Total backing-buffer allocations across the slot's caches."""
        return sum(cache.allocations for cache in self.caches)


class SlotPool:
    """Fixed-size pool; acquire/release is thread-safe and non-blocking.

    ``num_layers`` may be 0 for sequencers that keep no per-request model
    state (e.g. the one-shot Voltage forward path) — the pool then only
    bounds concurrency.
    """

    def __init__(self, num_slots: int, num_layers: int, capacity: int):
        if num_slots < 1:
            raise ValueError(f"need >= 1 slot, got {num_slots}")
        if num_layers < 0 or capacity < 1:
            raise ValueError(
                f"invalid slot geometry: num_layers={num_layers}, capacity={capacity}"
            )
        self.num_slots = num_slots
        self.capacity = capacity
        self._lock = threading.Lock()
        self._slots = [KVSlot(i, num_layers, capacity) for i in range(num_slots)]
        self._free = list(reversed(self._slots))  # pop() hands out slot 0 first
        self._in_use: set[int] = set()

    @property
    def in_use(self) -> int:
        with self._lock:
            return len(self._in_use)

    @property
    def num_free(self) -> int:
        with self._lock:
            return len(self._free)

    def acquire(self) -> KVSlot | None:
        """A free slot, or None when the pool is saturated (never blocks)."""
        with self._lock:
            if not self._free:
                return None
            slot = self._free.pop()
            self._in_use.add(slot.index)
            return slot

    def release(self, slot: KVSlot) -> None:
        """Recycle a slot: truncate its caches and return it to the pool."""
        with self._lock:
            if slot.index not in self._in_use:
                raise ValueError(f"slot {slot.index} is not checked out")
            self._in_use.remove(slot.index)
            slot.reset()
            self._free.append(slot)

    def allocations(self) -> int:
        """Backing allocations across all slots (steady state: one per cache)."""
        return sum(slot.allocations() for slot in self._slots)
