"""Admission queue + dispatch policy + load shedding for the online engine.

Three scheduling policies over one bounded queue:

- ``fifo`` — strict arrival order (the paper's sporadic single-request
  stream; also the policy under which the engine degenerates to the
  analytic :class:`~repro.serving.server.MonolithicServer` when it has one
  slot).
- ``priority`` — higher ``Request.priority`` first, arrival order within a
  class; the only policy under which preemption is meaningful.
- ``edf`` — earliest deadline first; deadline-less requests sort last.

Shedding happens at two points and is always *explicit* (a shed request is
returned to the caller with a reason, never silently dropped):

- **admission**: the queue is bounded (``max_queue``); an arrival that
  finds it full is shed with reason ``"queue-full"`` — this is the
  backpressure signal an upstream load balancer would see as HTTP 429.
- **dispatch**: a queued request whose deadline has already passed (or
  provably cannot be met, when the caller supplies a service-time
  estimate) is shed with reason ``"deadline"`` instead of wasting a slot
  on an answer nobody is waiting for.

The scheduler is single-owner (the engine loop); a lock still guards the
queue so live submissions from other threads are safe.
"""

from __future__ import annotations

import heapq
import itertools
import threading
from dataclasses import dataclass
from collections.abc import Callable

from repro.serving.arrivals import Request

__all__ = ["POLICIES", "ShedRequest", "Scheduler"]

POLICIES = ("fifo", "priority", "edf")

#: Shed reasons (stable strings — they label metrics and land in reports).
SHED_QUEUE_FULL = "queue-full"
SHED_DEADLINE = "deadline"


@dataclass(frozen=True)
class ShedRequest:
    """A request the engine refused, when, and why."""

    request: Request
    time: float
    reason: str


class Scheduler:
    """Bounded, policy-ordered admission queue with deadline shedding."""

    def __init__(
        self,
        policy: str = "fifo",
        max_queue: int | None = None,
        shed_on_deadline: bool = True,
        service_estimate: Callable[[Request], float] | None = None,
    ):
        """``service_estimate`` (optional, ``request -> seconds``) tightens
        deadline shedding: a queued request is dropped as soon as
        ``now + estimate > deadline``, not only once the deadline passes.
        """
        if policy not in POLICIES:
            raise ValueError(f"policy must be one of {POLICIES}, got {policy!r}")
        if max_queue is not None and max_queue < 1:
            raise ValueError(f"max_queue must be >= 1 or None, got {max_queue}")
        self.policy = policy
        self.max_queue = max_queue
        self.shed_on_deadline = shed_on_deadline
        self.service_estimate = service_estimate
        self._lock = threading.Lock()
        self._heap: list[tuple] = []
        self._tie = itertools.count()
        self.shed: list[ShedRequest] = []

    def _key(self, request: Request) -> tuple:
        if self.policy == "priority":
            return (-request.priority, request.arrival, request.id)
        if self.policy == "edf":
            deadline = request.deadline if request.deadline is not None else float("inf")
            return (deadline, request.arrival, request.id)
        return (request.arrival, request.id)

    @property
    def depth(self) -> int:
        with self._lock:
            return len(self._heap)

    # -- admission -------------------------------------------------------------

    def submit(self, request: Request, now: float) -> ShedRequest | None:
        """Enqueue an arrival; returns the shed record if it was refused."""
        with self._lock:
            if self.max_queue is not None and len(self._heap) >= self.max_queue:
                record = ShedRequest(request=request, time=now, reason=SHED_QUEUE_FULL)
                self.shed.append(record)
                return record
            heapq.heappush(self._heap, (self._key(request), next(self._tie), request))
            return None

    def requeue(self, request: Request) -> None:
        """Re-admit a preempted request, bypassing the queue bound.

        A preempted request was already admitted once; bouncing it off a
        momentarily-full queue would turn preemption into silent request
        loss, which the engine's no-drop guarantee forbids.
        """
        with self._lock:
            heapq.heappush(self._heap, (self._key(request), next(self._tie), request))

    # -- dispatch --------------------------------------------------------------

    def _hopeless(self, request: Request, now: float) -> bool:
        if not self.shed_on_deadline or request.deadline is None:
            return False
        if now > request.deadline:
            return True
        if self.service_estimate is not None:
            return now + self.service_estimate(request) > request.deadline
        return False

    def next_ready(self, now: float) -> Request | None:
        """Pop the best dispatchable request, shedding hopeless ones en route."""
        with self._lock:
            while self._heap:
                _, _, request = heapq.heappop(self._heap)
                if self._hopeless(request, now):
                    self.shed.append(
                        ShedRequest(request=request, time=now, reason=SHED_DEADLINE)
                    )
                    continue
                return request
            return None

    def best_waiting_priority(self) -> int | None:
        """Highest priority currently queued (None when empty); used by the
        engine to decide whether a running decode should be preempted."""
        with self._lock:
            if not self._heap:
                return None
            if self.policy == "priority":
                return -self._heap[0][0][0]
            return max(request.priority for _, _, request in self._heap)
