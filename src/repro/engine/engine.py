"""The online inference engine: continuous batching over a bounded slot pool.

The worker loop (INTERNALS §10) turns an arrival stream into completed
requests through four repeating phases, all at *token-step* granularity:

1. **admit** — arrivals whose timestamp has passed enter the scheduler's
   bounded queue (or are shed with backpressure, reason ``queue-full``);
2. **preempt** — under the preemptive priority policy, a queued request
   that outranks the lowest-priority running decode evicts it: the victim's
   slot is truncated and recycled, the victim re-queued (greedy decoding is
   deterministic, so its eventual output is unchanged — only work is lost);
3. **dispatch** — free slots are filled from the queue in policy order;
   requests whose deadline is already hopeless are shed (reason
   ``deadline``) instead of occupying a slot;
4. **step** — every in-flight request advances exactly one token step
   (prefill counts as one step), which is continuous batching at iteration
   granularity: a finishing decode frees its slot for a queued request at
   the very next iteration, no batch barrier.

Time comes from a pluggable clock: deterministic accelerated virtual time
(the default — soak tests and the ``serve`` bench) or dilated wall time.
Everything the loop does is observable: queue-depth / slot-occupancy
gauges, shed and preemption counters, per-request spans on the ``engine``
trace track.
"""

from __future__ import annotations

import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.engine.clock import VirtualClock
from repro.engine.scheduler import Scheduler, ShedRequest
from repro.engine.slots import KVSlot, SlotPool
from repro.obs.metrics import get_registry
from repro.obs.tracer import current_tracer
from repro.serving.arrivals import Request
from repro.serving.stats import ServedRequest, ServingStats

__all__ = [
    "EngineConfig",
    "CompletedRequest",
    "EngineReport",
    "EngineStalledError",
    "InferenceEngine",
]


class EngineStalledError(RuntimeError):
    """The loop made no progress — a scheduling bug, surfaced loudly."""


@dataclass(frozen=True)
class EngineConfig:
    """Engine sizing and policy knobs (see INTERNALS §10 for the semantics)."""

    num_slots: int = 4
    max_queue: int | None = None  # None = unbounded queue (no queue-full sheds)
    policy: str = "fifo"  # "fifo" | "priority" | "edf"
    preemptive: bool = False  # priority policy only: evict lower-priority decodes
    shed_on_deadline: bool = True  # drop queued requests that can no longer make it
    service_estimate: Callable[[Request], float] | None = None
    chaos_preempt_period: int | None = None  # testing: force a preemption every ~N steps
    chaos_max_preemptions: int = 4  # per-request chaos cap, so runs always terminate
    chaos_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError(f"need >= 1 slot, got {self.num_slots}")
        if self.preemptive and self.policy != "priority":
            raise ValueError("preemption requires the 'priority' policy")
        if self.chaos_preempt_period is not None and self.chaos_preempt_period < 1:
            raise ValueError(
                f"chaos_preempt_period must be >= 1, got {self.chaos_preempt_period}"
            )
        if self.chaos_max_preemptions < 0:
            raise ValueError(
                f"chaos_max_preemptions must be >= 0, got {self.chaos_max_preemptions}"
            )


@dataclass(frozen=True)
class CompletedRequest:
    """One served request: lifecycle timestamps plus the model output."""

    request: Request
    output: np.ndarray
    start: float  # first time it held a slot
    finish: float
    steps: int  # model forwards charged to it (includes redone work)
    preemptions: int = 0
    slot_index: int = -1

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    @property
    def deadline_missed(self) -> bool:
        return self.request.deadline is not None and self.finish > self.request.deadline


@dataclass
class EngineReport:
    """Everything one engine run produced, with serving-stats views."""

    completed: list[CompletedRequest]
    shed: list[ShedRequest]
    num_slots: int
    makespan: float = 0.0
    slot_seconds: float = 0.0
    steps_total: int = 0
    preemptions_total: int = 0

    @property
    def total_requests(self) -> int:
        return len(self.completed) + len(self.shed)

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / self.total_requests if self.total_requests else 0.0

    @property
    def mean_slot_occupancy(self) -> float:
        """Time-averaged fraction of the slot pool that was busy."""
        if self.makespan <= 0:
            return 0.0
        return self.slot_seconds / (self.makespan * self.num_slots)

    def outputs(self) -> dict[int, np.ndarray]:
        return {c.request.id: c.output for c in self.completed}

    def served(self) -> list[ServedRequest]:
        return [
            ServedRequest(request=c.request, start=c.start, finish=c.finish)
            for c in self.completed
        ]

    def stats(self) -> ServingStats:
        return ServingStats.from_served(self.served())


@dataclass
class _Flight:
    """Engine-side bookkeeping around one in-flight sequencer state."""

    state: object
    request: Request
    slot: KVSlot
    steps: int = 0


@dataclass
class _Lifecycle:
    first_start: float | None = None
    preemptions: int = 0
    steps: int = 0


class InferenceEngine:
    """Replays an arrival stream through a sequencer under one scheduler.

    The slot pool persists across :meth:`run` calls (its buffers are the
    expensive part); the scheduler is rebuilt per run so shed records and
    queue state never leak between runs.
    """

    def __init__(self, sequencer, config: EngineConfig | None = None, clock=None):
        self.sequencer = sequencer
        self.config = config if config is not None else EngineConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self.pool = SlotPool(
            self.config.num_slots,
            num_layers=sequencer.num_layers,
            capacity=sequencer.slot_capacity,
        )
        self.scheduler: Scheduler | None = None  # set per run

    def _new_scheduler(self) -> Scheduler:
        config = self.config
        return Scheduler(
            policy=config.policy,
            max_queue=config.max_queue,
            shed_on_deadline=config.shed_on_deadline,
            service_estimate=config.service_estimate,
        )

    # -- the worker loop -------------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        prompts: dict[int, np.ndarray] | None = None,
    ) -> EngineReport:
        """Serve every request; returns when the stream is fully drained.

        ``prompts`` optionally maps request ids to explicit token arrays;
        missing ids fall back to the sequencer's deterministic synthetic
        prompt.  Request ids must be unique — they key the report's outputs.
        """
        order = sorted(requests)
        ids = [r.id for r in order]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique within one engine run")
        prompts = prompts if prompts is not None else {}
        config, clock, pool = self.config, self.clock, self.pool
        scheduler = self.scheduler = self._new_scheduler()
        registry = get_registry()
        tracer = current_tracer()
        queue_gauge = registry.gauge("engine.queue_depth")
        slots_gauge = registry.gauge("engine.slots_in_use")
        chaos_rng = (
            np.random.default_rng(config.chaos_seed)
            if config.chaos_preempt_period is not None
            else None
        )

        lifecycles: dict[int, _Lifecycle] = {r.id: _Lifecycle() for r in order}
        active: list[_Flight] = []
        completed: list[CompletedRequest] = []
        shed_seen = 0
        last_chaos_step = 0
        next_arrival = 0
        first_arrival = order[0].arrival if order else 0.0
        report = EngineReport(completed=completed, shed=scheduler.shed, num_slots=pool.num_slots)

        def record_shed() -> None:
            nonlocal shed_seen
            for record in scheduler.shed[shed_seen:]:
                registry.counter("engine.shed_total", reason=record.reason).inc()
                if tracer.enabled:
                    tracer.record_at(
                        f"shed request {record.request.id}", cat="engine", kind="other",
                        start_s=record.time, duration_s=0.0, track="engine",
                        reason=record.reason,
                    )
            shed_seen = len(scheduler.shed)

        def preempt(flight: _Flight) -> None:
            active.remove(flight)
            pool.release(flight.slot)  # truncates the caches; buffers survive
            scheduler.requeue(flight.request)
            lifecycles[flight.request.id].preemptions += 1
            report.preemptions_total += 1
            registry.counter("engine.preemptions_total").inc()

        def finish(flight: _Flight, now: float) -> None:
            output = self.sequencer.result(flight.state)
            active.remove(flight)
            pool.release(flight.slot)
            life = lifecycles[flight.request.id]
            record = CompletedRequest(
                request=flight.request,
                output=output,
                start=life.first_start,
                finish=now,
                steps=life.steps,
                preemptions=life.preemptions,
                slot_index=flight.slot.index,
            )
            completed.append(record)
            registry.counter("engine.completed_total").inc()
            registry.histogram("engine.latency_seconds").observe(record.latency)
            if tracer.enabled:
                tracer.record_at(
                    f"request {flight.request.id}", cat="engine", kind="service",
                    start_s=record.start, duration_s=record.finish - record.start,
                    track="engine", arrival=flight.request.arrival,
                    preemptions=record.preemptions, steps=record.steps,
                )

        with tracer.span("engine.run", cat="engine", kind="request", track="engine-wall"):
            while True:
                progressed = False
                now = clock.now()

                # 1. admit everything that has arrived
                while next_arrival < len(order) and order[next_arrival].arrival <= now:
                    scheduler.submit(order[next_arrival], now)
                    next_arrival += 1
                    progressed = True
                record_shed()

                # 2. priority preemption: a queued request outranks a runner
                if config.preemptive and active and pool.num_free == 0:
                    best = scheduler.best_waiting_priority()
                    if best is not None:
                        victim = min(
                            active,
                            key=lambda f: (f.request.priority, -f.request.arrival, -f.request.id),
                        )
                        if victim.request.priority < best:
                            preempt(victim)
                            progressed = True

                # 3. fill free slots in policy order
                while pool.num_free > 0:
                    request = scheduler.next_ready(now)
                    if request is None:
                        break
                    slot = pool.acquire()
                    prompt = prompts.get(request.id)
                    if prompt is None:
                        prompt = self.sequencer.prompt_for(request)
                    state = self.sequencer.begin(request, prompt, slot)
                    life = lifecycles[request.id]
                    if life.first_start is None:
                        life.first_start = now
                    active.append(_Flight(state=state, request=request, slot=slot))
                    progressed = True
                record_shed()
                queue_gauge.set(scheduler.depth)
                slots_gauge.set(pool.in_use)

                # 4. one token step for every in-flight request
                if active:
                    # chaos hook: force a (seeded) preemption to prove restart
                    # correctness under adversarial scheduling; the per-request
                    # cap keeps the redone work finite, so runs always end
                    if (
                        chaos_rng is not None
                        and report.steps_total > 0
                        and report.steps_total % config.chaos_preempt_period == 0
                        and report.steps_total != last_chaos_step
                    ):
                        last_chaos_step = report.steps_total
                        eligible = [
                            f for f in active
                            if lifecycles[f.request.id].preemptions
                            < config.chaos_max_preemptions
                        ]
                        if eligible:
                            preempt(eligible[int(chaos_rng.integers(len(eligible)))])
                    for flight in list(active):
                        in_use = pool.in_use
                        began = time.perf_counter()
                        done, cost = self.sequencer.step(flight.state)
                        elapsed = (
                            cost if cost is not None else time.perf_counter() - began
                        )
                        clock.advance(elapsed)
                        flight.steps += 1
                        lifecycles[flight.request.id].steps += 1
                        report.steps_total += 1
                        report.slot_seconds += elapsed * in_use
                        if done:
                            finish(flight, clock.now())
                    progressed = True
                elif next_arrival < len(order):
                    clock.wait_until(order[next_arrival].arrival)
                    progressed = True
                elif scheduler.depth == 0:
                    break  # stream drained, queue empty, nothing in flight

                if not progressed:
                    raise EngineStalledError(
                        f"engine stalled at t={now:.6f}: queue={scheduler.depth}, "
                        f"active={len(active)}, free slots={pool.num_free}"
                    )

        registry.counter("engine.steps_total").inc(report.steps_total)
        end = max(
            [c.finish for c in completed] + [s.time for s in scheduler.shed],
            default=first_arrival,
        )
        report.makespan = end - first_arrival
        queue_gauge.set(0)
        slots_gauge.set(0)
        return report
