"""The online inference engine: continuous batching over a bounded slot pool.

The worker loop (INTERNALS §10) turns an arrival stream into completed
requests through four repeating phases, all at *token-step* granularity:

1. **admit** — arrivals whose timestamp has passed enter the scheduler's
   bounded queue (or are shed with backpressure, reason ``queue-full``);
2. **preempt** — under the preemptive priority policy, a queued request
   that outranks the lowest-priority running decode evicts it: the victim's
   slot is truncated and recycled, the victim re-queued (greedy decoding is
   deterministic, so its eventual output is unchanged — only work is lost);
3. **dispatch** — free slots are filled from the queue in policy order;
   requests whose deadline is already hopeless are shed (reason
   ``deadline``) instead of occupying a slot;
4. **step** — every in-flight request advances exactly one token step
   (prefill counts as one step), which is continuous batching at iteration
   granularity: a finishing decode frees its slot for a queued request at
   the very next iteration, no batch barrier.

Time comes from a pluggable clock: deterministic accelerated virtual time
(the default — soak tests and the ``serve`` bench) or dilated wall time.
Everything the loop does is observable: queue-depth / slot-occupancy
gauges, shed and preemption counters, per-request spans on the ``engine``
trace track.

Two driving modes share the same loop body:

- :meth:`InferenceEngine.run` replays a complete arrival stream to drain —
  the original one-shot surface, bit-identical to what it always did;
- the **stream API** (:meth:`open_stream` / :meth:`offer` / :meth:`pump` /
  :meth:`close_stream`) exposes the identical loop incrementally, bounded
  by a virtual-time horizon, so an external co-simulator (``repro.fleet``)
  can interleave many engines in one global virtual timeline: advance each
  replica to the next event, observe its queue/slot gauges, route new
  arrivals, repeat.
"""

from __future__ import annotations

import heapq
import itertools
import time
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.engine.clock import VirtualClock
from repro.engine.prefix_cache import PrefixCacheStats, RadixPrefixCache
from repro.engine.scheduler import Scheduler, ShedRequest
from repro.engine.slots import KVSlot, SlotPool
from repro.obs.metrics import get_registry
from repro.obs.tracer import current_tracer
from repro.serving.arrivals import Request
from repro.serving.stats import ServedRequest, ServingStats

__all__ = [
    "EngineConfig",
    "CompletedRequest",
    "EngineReport",
    "EngineStalledError",
    "InferenceEngine",
]


class EngineStalledError(RuntimeError):
    """The loop made no progress — a scheduling bug, surfaced loudly."""


@dataclass(frozen=True)
class EngineConfig:
    """Engine sizing and policy knobs (see INTERNALS §10 for the semantics)."""

    num_slots: int = 4
    max_queue: int | None = None  # None = unbounded queue (no queue-full sheds)
    policy: str = "fifo"  # "fifo" | "priority" | "edf"
    preemptive: bool = False  # priority policy only: evict lower-priority decodes
    shed_on_deadline: bool = True  # drop queued requests that can no longer make it
    service_estimate: Callable[[Request], float] | None = None
    prefix_cache: bool = False  # retain finished prompt KV for cross-request reuse
    prefix_cache_slots: int | None = None  # extra retained slots; None = num_slots
    chaos_preempt_period: int | None = None  # testing: force a preemption every ~N steps
    chaos_max_preemptions: int = 4  # per-request chaos cap, so runs always terminate
    chaos_seed: int = 0

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValueError(f"need >= 1 slot, got {self.num_slots}")
        if self.preemptive and self.policy != "priority":
            raise ValueError("preemption requires the 'priority' policy")
        if self.prefix_cache_slots is not None:
            if not self.prefix_cache:
                raise ValueError("prefix_cache_slots requires prefix_cache=True")
            if self.prefix_cache_slots < 1:
                raise ValueError(
                    f"prefix_cache_slots must be >= 1, got {self.prefix_cache_slots}"
                )
        if self.chaos_preempt_period is not None and self.chaos_preempt_period < 1:
            raise ValueError(
                f"chaos_preempt_period must be >= 1, got {self.chaos_preempt_period}"
            )
        if self.chaos_max_preemptions < 0:
            raise ValueError(
                f"chaos_max_preemptions must be >= 0, got {self.chaos_max_preemptions}"
            )


@dataclass(frozen=True)
class CompletedRequest:
    """One served request: lifecycle timestamps plus the model output."""

    request: Request
    output: np.ndarray
    start: float  # first time it held a slot
    finish: float
    steps: int  # model forwards charged to it (includes redone work)
    preemptions: int = 0
    slot_index: int = -1
    prefix_reused: int = 0  # prompt positions seeded from the prefix cache

    @property
    def latency(self) -> float:
        return self.finish - self.request.arrival

    @property
    def deadline_missed(self) -> bool:
        return self.request.deadline is not None and self.finish > self.request.deadline


@dataclass
class EngineReport:
    """Everything one engine run produced, with serving-stats views."""

    completed: list[CompletedRequest]
    shed: list[ShedRequest]
    num_slots: int
    makespan: float = 0.0
    slot_seconds: float = 0.0
    steps_total: int = 0
    preemptions_total: int = 0
    prefix_cache: dict | None = None  # per-run hit/miss/eviction counts, if enabled

    @property
    def total_requests(self) -> int:
        return len(self.completed) + len(self.shed)

    @property
    def shed_rate(self) -> float:
        return len(self.shed) / self.total_requests if self.total_requests else 0.0

    @property
    def mean_slot_occupancy(self) -> float:
        """Time-averaged fraction of the slot pool that was busy."""
        if self.makespan <= 0:
            return 0.0
        return self.slot_seconds / (self.makespan * self.num_slots)

    def outputs(self) -> dict[int, np.ndarray]:
        return {c.request.id: c.output for c in self.completed}

    def served(self) -> list[ServedRequest]:
        return [
            ServedRequest(request=c.request, start=c.start, finish=c.finish)
            for c in self.completed
        ]

    def stats(self) -> ServingStats:
        return ServingStats.from_served(self.served())


@dataclass
class _Flight:
    """Engine-side bookkeeping around one in-flight sequencer state."""

    state: object
    request: Request
    slot: KVSlot
    steps: int = 0


@dataclass
class _Lifecycle:
    first_start: float | None = None
    preemptions: int = 0
    steps: int = 0
    prefix_reused: int = 0  # summed across dispatches (re-dispatches may re-hit)


@dataclass
class _Stream:
    """Mutable state of one open request stream (one run, possibly incremental)."""

    scheduler: Scheduler
    report: EngineReport
    chaos_rng: np.random.Generator | None
    lifecycles: dict[int, _Lifecycle] = field(default_factory=dict)
    active: list[_Flight] = field(default_factory=list)
    pending: list[tuple] = field(default_factory=list)  # heap of (arrival, tie, request)
    prompts: dict[int, np.ndarray] = field(default_factory=dict)
    tie: itertools.count = field(default_factory=itertools.count)
    first_arrival: float | None = None
    shed_seen: int = 0
    last_chaos_step: int = 0
    prefix_base: PrefixCacheStats | None = None  # cache counters at stream open


class InferenceEngine:
    """Replays an arrival stream through a sequencer under one scheduler.

    The slot pool persists across :meth:`run` calls (its buffers are the
    expensive part); the scheduler is rebuilt per run so shed records and
    queue state never leak between runs.

    ``labels`` (optional) tag every metric the engine records — e.g.
    ``labels={"replica": "r0"}`` yields ``engine.queue_depth{replica=r0}``
    — so a fleet of engines sharing one registry stays distinguishable.
    """

    def __init__(
        self,
        sequencer,
        config: EngineConfig | None = None,
        clock=None,
        labels: dict[str, str] | None = None,
    ):
        self.sequencer = sequencer
        self.config = config if config is not None else EngineConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self.labels = dict(labels) if labels else {}
        self._track = (
            "engine"
            if not self.labels
            else "engine[" + ",".join(f"{k}={v}" for k, v in sorted(self.labels.items())) + "]"
        )
        retained = 0
        if self.config.prefix_cache:
            if not getattr(sequencer, "supports_prefix_cache", False):
                raise ValueError(
                    f"{type(sequencer).__name__} does not support the prefix cache "
                    "(it keeps no engine-side KV rows to retain)"
                )
            retained = (
                self.config.prefix_cache_slots
                if self.config.prefix_cache_slots is not None
                else self.config.num_slots
            )
        self.pool = SlotPool(
            self.config.num_slots,
            num_layers=sequencer.num_layers,
            capacity=sequencer.slot_capacity,
            retained_slots=retained,
        )
        # the cache recycles displaced/duplicate slots straight back to the pool
        self.prefix_cache: RadixPrefixCache | None = (
            RadixPrefixCache(on_release=self.pool.reclaim)
            if self.config.prefix_cache
            else None
        )
        self.scheduler: Scheduler | None = None  # set per run
        self._stream: _Stream | None = None

    def _new_scheduler(self) -> Scheduler:
        config = self.config
        return Scheduler(
            policy=config.policy,
            max_queue=config.max_queue,
            shed_on_deadline=config.shed_on_deadline,
            service_estimate=config.service_estimate,
        )

    # -- observable load (what a router / autoscaler reads) --------------------

    @property
    def queue_depth(self) -> int:
        """Requests admitted but not yet holding a slot (0 when no stream)."""
        return self._stream.scheduler.depth if self._stream is not None else 0

    @property
    def slots_in_use(self) -> int:
        return self.pool.in_use

    @property
    def pending_arrivals(self) -> int:
        """Offered requests whose arrival time the clock has not reached."""
        return len(self._stream.pending) if self._stream is not None else 0

    @property
    def idle(self) -> bool:
        """No queued, in-flight, or future work on the open stream."""
        s = self._stream
        return s is None or (not s.pending and not s.active and s.scheduler.depth == 0)

    # -- the incremental stream surface ----------------------------------------

    def open_stream(self) -> None:
        """Begin an incremental run: requests arrive via :meth:`offer`, time
        advances via :meth:`pump`, and :meth:`close_stream` yields the report."""
        if self._stream is not None:
            raise RuntimeError("a stream is already open on this engine")
        config = self.config
        scheduler = self.scheduler = self._new_scheduler()
        report = EngineReport(completed=[], shed=scheduler.shed, num_slots=self.pool.num_slots)
        self._stream = _Stream(
            scheduler=scheduler,
            report=report,
            chaos_rng=(
                np.random.default_rng(config.chaos_seed)
                if config.chaos_preempt_period is not None
                else None
            ),
            prefix_base=(
                self.prefix_cache.stats.snapshot()
                if self.prefix_cache is not None
                else None
            ),
        )

    def offer(self, request: Request, prompt: np.ndarray | None = None) -> None:
        """Hand one request to the open stream (admitted on the next pump)."""
        s = self._require_stream()
        if request.id in s.lifecycles:
            raise ValueError(
                f"request ids must be unique within one engine run (saw {request.id} twice)"
            )
        s.lifecycles[request.id] = _Lifecycle()
        heapq.heappush(s.pending, (request.arrival, next(s.tie), request))
        if prompt is not None:
            s.prompts[request.id] = prompt
        if s.first_arrival is None or request.arrival < s.first_arrival:
            s.first_arrival = request.arrival

    def pump(self, until: float | None = None) -> None:
        """Advance the open stream: to drain (``until=None``) or until the
        clock reaches the virtual-time horizon ``until``.

        With a horizon, an idle engine jumps its clock straight to ``until``
        (replicas stay mutually consistent in fleet co-simulation); a busy
        engine steps until a token step carries it past the horizon — steps
        are atomic, so the clock may overshoot by part of one step.
        """
        self._run_loop(self._require_stream(), until)

    def close_stream(self) -> EngineReport:
        """Finish the open stream (draining any remaining work) and report."""
        s = self._require_stream()
        self._run_loop(s, None)
        return self._finalise(s)

    def _require_stream(self) -> _Stream:
        if self._stream is None:
            raise RuntimeError("no open stream: call open_stream() first")
        return self._stream

    # -- the one-shot surface --------------------------------------------------

    def run(
        self,
        requests: Sequence[Request],
        prompts: dict[int, np.ndarray] | None = None,
    ) -> EngineReport:
        """Serve every request; returns when the stream is fully drained.

        ``prompts`` optionally maps request ids to explicit token arrays;
        missing ids fall back to the sequencer's deterministic synthetic
        prompt.  Request ids must be unique — they key the report's outputs.
        """
        order = sorted(requests)
        ids = [r.id for r in order]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids must be unique within one engine run")
        prompts = prompts if prompts is not None else {}
        tracer = current_tracer()
        self.open_stream()
        s = self._stream
        for request in order:
            self.offer(request, prompts.get(request.id))
        with tracer.span("engine.run", cat="engine", kind="request", track="engine-wall"):
            self._run_loop(s, None)
        return self._finalise(s)

    # -- slot + prefix-cache plumbing ------------------------------------------

    def _can_dispatch(self) -> bool:
        """Whether a queued request could start now: a clean free slot, or a
        retained refcount-0 prefix entry to evict — concurrency stays capped
        at ``num_slots`` either way."""
        pool = self.pool
        if pool.in_use >= pool.num_slots:
            return False
        if pool.num_free > 0:
            return True
        return self.prefix_cache is not None and self.prefix_cache.evictable()

    def _acquire_slot(self) -> KVSlot | None:
        """A clean slot: from the free list, else by evicting the LRU
        refcount-0 prefix entry and reclaiming its retained slot."""
        slot = self.pool.acquire()
        if slot is None and self.prefix_cache is not None:
            victim = self.prefix_cache.evict_lru()
            if victim is not None:
                slot = self.pool.reclaim(victim.slot, checkout=True)
        return slot

    def _seed_prefix(self, slot: KVSlot, prompt: np.ndarray) -> int:
        """Copy the longest cached prefix of ``prompt`` into ``slot``; the
        donor entry stays pinned over the copy window.  The match is capped
        so at least ``min_prefill_suffix`` prompt positions re-prefill as a
        multi-row GEMM (the bit-identity condition, INTERNALS §16)."""
        cache = self.prefix_cache
        suffix = getattr(self.sequencer, "min_prefill_suffix", 2)
        hit = cache.match(prompt, limit=len(prompt) - suffix)
        if hit is None:
            return 0
        entry, length = hit
        with cache.pinned(entry):
            slot.copy_prefix_from(entry.slot, length)
        return length

    def _release_slot(self, flight: "_Flight") -> None:
        """Release a flight's slot — retaining its prompt rows for the
        prefix cache when the sequencer deems them shareable."""
        if self.prefix_cache is not None:
            key = self.sequencer.cache_key(flight.state)
            if key is not None:
                flight.slot.truncate(len(key))  # prompt rows only; decode rows drop
                self.pool.release(flight.slot, retain=True)
                self.prefix_cache.insert(key, flight.slot)
                return
        self.pool.release(flight.slot)

    # -- the worker loop -------------------------------------------------------

    def _run_loop(self, s: _Stream, until: float | None) -> None:
        config, clock, pool = self.config, self.clock, self.pool
        scheduler, report, active = s.scheduler, s.report, s.active
        lifecycles = s.lifecycles
        registry = get_registry()
        tracer = current_tracer()
        labels = self.labels
        queue_gauge = registry.gauge("engine.queue_depth", **labels)
        slots_gauge = registry.gauge("engine.slots_in_use", **labels)

        def record_shed() -> None:
            for record in scheduler.shed[s.shed_seen:]:
                registry.counter("engine.shed_total", reason=record.reason, **labels).inc()
                if tracer.enabled:
                    tracer.record_at(
                        f"shed request {record.request.id}", cat="engine", kind="other",
                        start_s=record.time, duration_s=0.0, track=self._track,
                        reason=record.reason,
                    )
            s.shed_seen = len(scheduler.shed)

        def preempt(flight: _Flight) -> None:
            active.remove(flight)
            # prompt rows may be retained for the prefix cache — the victim
            # itself will re-match them on re-dispatch, shrinking redone work
            self._release_slot(flight)
            scheduler.requeue(flight.request)
            lifecycles[flight.request.id].preemptions += 1
            report.preemptions_total += 1
            registry.counter("engine.preemptions_total", **labels).inc()

        def finish(flight: _Flight, now: float) -> None:
            output = self.sequencer.result(flight.state)
            active.remove(flight)
            self._release_slot(flight)
            life = lifecycles[flight.request.id]
            record = CompletedRequest(
                request=flight.request,
                output=output,
                start=life.first_start,
                finish=now,
                steps=life.steps,
                preemptions=life.preemptions,
                slot_index=flight.slot.index,
                prefix_reused=life.prefix_reused,
            )
            report.completed.append(record)
            registry.counter("engine.completed_total", **labels).inc()
            registry.histogram("engine.latency_seconds", **labels).observe(record.latency)
            if tracer.enabled:
                tracer.record_at(
                    f"request {flight.request.id}", cat="engine", kind="service",
                    start_s=record.start, duration_s=record.finish - record.start,
                    track=self._track, arrival=flight.request.arrival,
                    preemptions=record.preemptions, steps=record.steps,
                )

        while True:
            progressed = False
            now = clock.now()
            if until is not None and now >= until:
                return

            # 1. admit everything that has arrived
            while s.pending and s.pending[0][0] <= now:
                _, _, request = heapq.heappop(s.pending)
                scheduler.submit(request, now)
                progressed = True
            record_shed()

            # 2. priority preemption: a queued request outranks a runner
            if config.preemptive and active and not self._can_dispatch():
                best = scheduler.best_waiting_priority()
                if best is not None:
                    victim = min(
                        active,
                        key=lambda f: (f.request.priority, -f.request.arrival, -f.request.id),
                    )
                    if victim.request.priority < best:
                        preempt(victim)
                        progressed = True

            # 3. fill free slots in policy order
            while self._can_dispatch():
                request = scheduler.next_ready(now)
                if request is None:
                    break
                slot = self._acquire_slot()
                if slot is None:  # every retained entry pinned — cannot happen
                    break         # mid-loop today, but stay defensive
                prompt = s.prompts.get(request.id)
                if prompt is None:
                    prompt = self.sequencer.prompt_for(request)
                if self.prefix_cache is not None:
                    cached_prefix = self._seed_prefix(slot, prompt)
                    state = self.sequencer.begin(
                        request, prompt, slot, cached_prefix=cached_prefix
                    )
                    lifecycles[request.id].prefix_reused += cached_prefix
                else:
                    state = self.sequencer.begin(request, prompt, slot)
                life = lifecycles[request.id]
                if life.first_start is None:
                    life.first_start = now
                active.append(_Flight(state=state, request=request, slot=slot))
                progressed = True
            record_shed()
            queue_gauge.set(scheduler.depth)
            slots_gauge.set(pool.in_use)

            # 4. one token step for every in-flight request
            if active:
                # chaos hook: force a (seeded) preemption to prove restart
                # correctness under adversarial scheduling; the per-request
                # cap keeps the redone work finite, so runs always end
                if (
                    s.chaos_rng is not None
                    and report.steps_total > 0
                    and report.steps_total % config.chaos_preempt_period == 0
                    and report.steps_total != s.last_chaos_step
                ):
                    s.last_chaos_step = report.steps_total
                    eligible = [
                        f for f in active
                        if lifecycles[f.request.id].preemptions
                        < config.chaos_max_preemptions
                    ]
                    if eligible:
                        preempt(eligible[int(s.chaos_rng.integers(len(eligible)))])
                for flight in list(active):
                    in_use = pool.in_use
                    began = time.perf_counter()
                    done, cost = self.sequencer.step(flight.state)
                    elapsed = (
                        cost if cost is not None else time.perf_counter() - began
                    )
                    clock.advance(elapsed)
                    flight.steps += 1
                    lifecycles[flight.request.id].steps += 1
                    report.steps_total += 1
                    report.slot_seconds += elapsed * in_use
                    if done:
                        finish(flight, clock.now())
                progressed = True
            elif s.pending:
                next_arrival = s.pending[0][0]
                if until is not None and next_arrival > until:
                    clock.wait_until(until)
                    return
                clock.wait_until(next_arrival)
                progressed = True
            elif scheduler.depth == 0:
                if until is not None:
                    clock.wait_until(until)  # drained: idle through the horizon
                return

            if not progressed:
                raise EngineStalledError(
                    f"engine stalled at t={now:.6f}: queue={scheduler.depth}, "
                    f"active={len(active)}, free slots={pool.num_free}"
                )

    def _finalise(self, s: _Stream) -> EngineReport:
        registry = get_registry()
        report = s.report
        registry.counter("engine.steps_total", **self.labels).inc(report.steps_total)
        if self.prefix_cache is not None and s.prefix_base is not None:
            delta = self.prefix_cache.stats.delta(s.prefix_base)
            report.prefix_cache = {**delta.as_dict(), "entries": len(self.prefix_cache)}
            labels = self.labels
            registry.counter("engine.prefix_cache.hits_total", **labels).inc(delta.hits)
            registry.counter("engine.prefix_cache.misses_total", **labels).inc(delta.misses)
            registry.counter("engine.prefix_cache.evictions_total", **labels).inc(
                delta.evictions
            )
            registry.counter(
                "engine.prefix_cache.positions_saved_total", **labels
            ).inc(delta.positions_saved)
            registry.gauge("engine.prefix_cache.entries", **labels).set(
                len(self.prefix_cache)
            )
        first_arrival = s.first_arrival if s.first_arrival is not None else 0.0
        end = max(
            [c.finish for c in report.completed] + [r.time for r in s.scheduler.shed],
            default=first_arrival,
        )
        report.makespan = end - first_arrival
        registry.gauge("engine.queue_depth", **self.labels).set(0)
        registry.gauge("engine.slots_in_use", **self.labels).set(0)
        self._stream = None
        return report
