"""Sequencers: the model-execution half of the engine, one step at a time.

A sequencer owns *how* a request computes; the engine owns *when*.  The
contract is a tiny state machine:

- ``begin(request, prompt, slot)`` binds a request to a KV slot and returns
  an opaque per-request state (no model compute happens here);
- ``step(state)`` runs exactly one token-step of model compute and returns
  ``(done, virtual_cost)`` — ``virtual_cost`` is the simulated seconds to
  charge a :class:`~repro.engine.clock.VirtualClock` (None means "charge
  measured wall time", the right default under a wall clock);
- ``result(state)`` is the finished request's output.

Two implementations:

- :class:`GPT2CachedSequencer` — greedy KV-cached decoding, *bit-identical*
  to :meth:`repro.models.gpt2.GPT2Model.generate_cached` for the same
  prompt: every forward it runs is literally the same op sequence
  (embedding add, ``layer_forward_cached`` per layer, final-norm LM head),
  against the slot's caches instead of a private one.  Buffer capacity is
  the only difference, and capacity never changes values.  This is what
  makes the engine's soak guarantee provable: interleaving, preemption and
  restart permute *which* step runs next, never what a step computes.
- :class:`VoltageForwardSequencer` — the paper's serving workload: one
  distributed forward pass per request on real threaded workers
  (:meth:`VoltageSystem.execute_threaded`), done in a single step.  The
  slot carries no KV state (``num_layers == 0``); the pool purely bounds
  how many distributed forwards may be in flight.

A preempted request is simply re-``begin``-ed later: greedy decoding is
deterministic, so recomputing from the prompt reproduces the discarded
steps exactly — correctness is preserved by construction, at the price of
redone work (counted by the engine as ``preemptions``).
"""

from __future__ import annotations

import queue
import threading
import zlib
from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.serving.arrivals import Request
from repro.engine.slots import KVSlot

__all__ = ["DecodeSession", "GPT2CachedSequencer", "VoltageDecodeSequencer", "VoltageForwardSequencer"]

#: Namespaces the per-tenant shared-prefix RNG stream apart from the
#: per-request suffix stream (which is seeded ``[prompt_seed, request.id]``).
_TENANT_PREFIX_NS = 0x5E9F


def _clipped_prompt_len(
    request: Request, max_positions: int, truncated: dict[int, tuple[int, int]]
) -> int:
    """Clip ``request.n`` to the model's position budget — and *record* it:
    a request asking for more context than the model has is a serving
    misconfiguration worth surfacing, not something to silently absorb.
    ``truncated`` maps request id -> (requested, used); recording is
    idempotent so preemption re-``begin``s don't double-count."""
    n = min(request.n, max_positions)
    if n < request.n and request.id not in truncated:
        truncated[request.id] = (request.n, n)
        get_registry().counter("engine.prompt_truncated_total").inc()
    return n


def _synthetic_prompt(
    request: Request,
    max_positions: int,
    vocab_size: int,
    prompt_seed: int,
    truncated: dict[int, tuple[int, int]],
    shared_prefix_tokens: int = 0,
    min_suffix: int = 2,
) -> np.ndarray:
    """The deterministic synthetic prompt every sequencer derives from
    ``(prompt_seed, request.id)`` — optionally with a tenant-keyed shared
    prefix, so requests from the same tenant open with the same
    ``shared_prefix_tokens`` ids (seeded by ``(prompt_seed, tenant)``, so
    it does not depend on which replica builds it).  At least ``min_suffix``
    tokens stay request-unique, matching the prefix cache's match cap."""
    n = _clipped_prompt_len(request, max_positions, truncated)
    rng = np.random.default_rng([prompt_seed, request.id])
    suffix = rng.integers(0, vocab_size, size=n, dtype=np.int64)
    if shared_prefix_tokens <= 0 or request.tenant is None:
        return suffix
    prefix_len = min(shared_prefix_tokens, max(n - min_suffix, 0))
    if prefix_len == 0:
        return suffix
    prefix_rng = np.random.default_rng(
        [prompt_seed, _TENANT_PREFIX_NS, zlib.crc32(request.tenant.encode())]
    )
    prefix = prefix_rng.integers(0, vocab_size, size=prefix_len, dtype=np.int64)
    return np.concatenate([prefix, suffix[prefix_len:]])


@dataclass
class _DecodeState:
    """One in-flight greedy decode bound to a KV slot."""

    request: Request
    slot: KVSlot
    ids: list[int]
    prompt_len: int
    next_id: int | None = None
    emitted: int = 0
    prefilled: bool = False
    done: bool = False
    cached_prefix: int = 0  # prompt rows seeded from the prefix cache


class GPT2CachedSequencer:
    """Token-step greedy decoding over slot-owned KV caches."""

    #: The engine's prefix cache may hand this sequencer pre-seeded prompt
    #: rows (``begin(..., cached_prefix=k)``); Voltage sequencers keep KV
    #: state rank-side and opt out.
    supports_prefix_cache = True
    #: A cached-prefix match leaves at least this many prompt positions to
    #: re-prefill, keeping the suffix forward a multi-row batched GEMM —
    #: batch rows are bit-stable across batch shapes, single GEMV rows are
    #: not (INTERNALS §16), and bit-identity to ``generate_cached`` rides
    #: on exactly that.
    min_prefill_suffix = 2

    def __init__(
        self,
        model,
        max_new_tokens: int = 8,
        step_cost: Callable[[int, int], float] | None = None,
        prompt_seed: int = 0,
        shared_prefix_tokens: int = 0,
    ):
        """``step_cost(new_positions, cache_len_before)`` supplies the
        deterministic virtual-time cost of one forward; leave None to charge
        measured wall time (wall-clock serving).  ``prompt_seed`` namespaces
        the synthetic prompts :meth:`prompt_for` derives from request ids;
        ``shared_prefix_tokens > 0`` opens every tenant-tagged request's
        prompt with that many tenant-keyed common tokens (the prefix-cache
        workload shape).
        """
        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        if shared_prefix_tokens < 0:
            raise ValueError(
                f"shared_prefix_tokens must be >= 0, got {shared_prefix_tokens}"
            )
        self.model = model
        self.max_new_tokens = max_new_tokens
        self.step_cost = step_cost
        self.prompt_seed = prompt_seed
        self.shared_prefix_tokens = shared_prefix_tokens
        #: request id -> (requested n, clipped n) for prompts that exceeded
        #: the model's position budget (also counted on
        #: ``engine.prompt_truncated_total``).
        self.truncated_prompts: dict[int, tuple[int, int]] = {}

    # -- slot geometry the engine builds its pool from -------------------------

    @property
    def num_layers(self) -> int:
        return self.model.num_layers

    @property
    def slot_capacity(self) -> int:
        return self.model.config.max_positions

    # -- prompts ---------------------------------------------------------------

    def prompt_for(self, request: Request) -> np.ndarray:
        """Deterministic synthetic prompt: ``request.n`` tokens seeded by
        ``(prompt_seed, request.id)`` — the soak tests and the serve bench
        replay the same prompts offline to check bit-identity.  Tenant-tagged
        requests share a ``shared_prefix_tokens``-long opening keyed by the
        tenant; prompts clipped to ``max_positions`` are recorded in
        :attr:`truncated_prompts`."""
        return _synthetic_prompt(
            request,
            self.model.config.max_positions,
            self.model.config.vocab_size,
            self.prompt_seed,
            self.truncated_prompts,
            shared_prefix_tokens=self.shared_prefix_tokens,
            min_suffix=self.min_prefill_suffix,
        )

    def offline_reference(self, request: Request, prompt: np.ndarray | None = None) -> np.ndarray:
        """The ground-truth output: a fresh offline ``generate_cached`` run."""
        prompt = prompt if prompt is not None else self.prompt_for(request)
        return self.model.generate_cached(prompt, max_new_tokens=self.max_new_tokens)

    # -- the state machine -----------------------------------------------------

    def begin(
        self,
        request: Request,
        prompt: np.ndarray,
        slot: KVSlot,
        cached_prefix: int = 0,
    ) -> _DecodeState:
        """Bind a request to its slot.  ``cached_prefix > 0`` declares that
        the slot already holds byte-exact K/V rows for the first
        ``cached_prefix`` prompt tokens (seeded by the engine from the
        prefix cache); prefill then covers only the remaining suffix."""
        if slot.length != cached_prefix:
            raise ValueError(
                f"slot {slot.index} was handed over dirty "
                f"(length {slot.length}, expected {cached_prefix} cached-prefix rows)"
            )
        prompt = np.asarray(prompt)
        if prompt.ndim != 1 or prompt.size < 1:
            raise ValueError(f"prompt must be a non-empty 1-D id array, got {prompt.shape}")
        if prompt.size > self.model.config.max_positions:
            raise ValueError(
                f"prompt of {prompt.size} tokens exceeds max_positions "
                f"{self.model.config.max_positions}"
            )
        if cached_prefix < 0 or (
            cached_prefix > 0 and cached_prefix > prompt.size - self.min_prefill_suffix
        ):
            raise ValueError(
                f"cached_prefix {cached_prefix} must leave >= {self.min_prefill_suffix} "
                f"prompt positions of a {prompt.size}-token prompt to prefill"
            )
        return _DecodeState(
            request=request,
            slot=slot,
            ids=[int(t) for t in prompt],
            prompt_len=prompt.size,
            cached_prefix=cached_prefix,
        )

    def cache_key(self, state: _DecodeState) -> tuple[int, ...] | None:
        """The token ids whose slot rows are safe to retain for the prefix
        cache: *prompt* rows only — prefill rows come from multi-row GEMMs
        (bit-stable across requests), decode rows from single-row GEMVs (not)
        — and only when at least ``min_prefill_suffix`` of them exist."""
        length = min(state.slot.length, state.prompt_len)
        if length < self.min_prefill_suffix:
            return None
        return tuple(state.ids[:length])

    def _forward(
        self, state: _DecodeState, new_ids: list[int], offset: int, all_positions: bool = False
    ) -> np.ndarray:
        """One model forward over the new positions — the exact op sequence of
        ``generate_cached``'s inner ``step``, against the slot's caches —
        returning LM-head logits (all positions' when ``all_positions``,
        for speculative verify; the last position's otherwise)."""
        return self.model.logits_cached(
            new_ids,
            offset,
            state.slot.caches,
            workspace=state.slot.workspace,
            all_positions=all_positions,
        )

    def step(self, state: _DecodeState) -> tuple[bool, float | None]:
        if state.done:
            raise ValueError(f"request {state.request.id} already finished")
        max_positions = self.model.config.max_positions
        if not state.prefilled:
            new = state.ids[state.cached_prefix:]
            cost = self._cost(len(new), state.cached_prefix)
            state.next_id = int(np.argmax(self._forward(state, new, state.cached_prefix)))
            state.prefilled = True
            if self.max_new_tokens == 0 or len(state.ids) >= max_positions:
                state.done = True
            return state.done, cost
        # one iteration of generate_cached's greedy loop: append the pending
        # token, then (unless finished) project it through the cache
        state.ids.append(state.next_id)
        state.emitted += 1
        if state.emitted >= self.max_new_tokens or len(state.ids) >= max_positions:
            state.done = True
            return True, 0.0 if self.step_cost is not None else None
        cost = self._cost(1, len(state.ids) - 1)
        state.next_id = int(
            np.argmax(self._forward(state, [state.ids[-1]], len(state.ids) - 1))
        )
        return False, cost

    def _cost(self, new_positions: int, cache_len: int) -> float | None:
        if self.step_cost is None:
            return None
        return self.step_cost(new_positions, cache_len)

    def result(self, state: _DecodeState) -> np.ndarray:
        if not state.done:
            raise ValueError(f"request {state.request.id} is still decoding")
        return np.asarray(state.ids, dtype=np.int64)


@dataclass
class _ForwardState:
    """One pending single-forward (classification-style) request."""

    request: Request
    slot: KVSlot
    ids: np.ndarray
    output: np.ndarray | None = None
    done: bool = False
    comm_stats: list = field(default_factory=list)


class VoltageForwardSequencer:
    """One distributed forward per request via the threaded Voltage runtime."""

    num_layers = 0  # slots carry no KV state; the pool only bounds concurrency

    def __init__(
        self,
        system,
        service_time: Callable[[int], float] | None = None,
        prompt_seed: int = 0,
    ):
        """``system`` is a :class:`~repro.systems.voltage.VoltageSystem`;
        ``service_time(n)`` supplies the virtual-time cost of one request
        (e.g. the analytic Voltage latency), None charges measured wall."""
        self.system = system
        self.service_time = service_time
        self.prompt_seed = prompt_seed
        self.truncated_prompts: dict[int, tuple[int, int]] = {}

    @property
    def slot_capacity(self) -> int:
        return self.system.model.config.max_positions

    def prompt_for(self, request: Request) -> np.ndarray:
        return _synthetic_prompt(
            request,
            self.system.model.config.max_positions,
            self.system.model.config.vocab_size,
            self.prompt_seed,
            self.truncated_prompts,
        )

    def offline_reference(self, request: Request, prompt: np.ndarray | None = None) -> np.ndarray:
        prompt = prompt if prompt is not None else self.prompt_for(request)
        output, _ = self.system.execute_threaded(prompt)
        return output

    def begin(self, request: Request, prompt: np.ndarray, slot: KVSlot) -> _ForwardState:
        return _ForwardState(request=request, slot=slot, ids=np.asarray(prompt))

    def step(self, state: _ForwardState) -> tuple[bool, float | None]:
        if state.done:
            raise ValueError(f"request {state.request.id} already finished")
        state.output, state.comm_stats = self.system.execute_threaded(state.ids)
        state.done = True
        cost = self.service_time(state.ids.shape[0]) if self.service_time else None
        return True, cost

    def result(self, state: _ForwardState) -> np.ndarray:
        if not state.done:
            raise ValueError(f"request {state.request.id} has not run")
        return state.output


class DecodeSession:
    """A resident K-rank decode service driven by per-step commands.

    The engine interleaves token steps of many requests, so a one-shot
    SPMD launch per request would pay runtime startup per token.  Instead
    the session keeps all ``K`` ranks alive inside one long-lived
    ``runtime.run`` call (on a background thread) and feeds them commands
    over per-rank queues:

    - ``("begin", slot, capacity)`` — allocate this rank's KV shards for
      the slot, spans fixed over ``capacity`` (re-beginning a slot simply
      replaces its shards, which is how preemption restarts work);
    - ``("forward", slot, new_ids, offset)`` — run one position-sharded
      decode step (``systems.decode.sharded_decode_step``) and reply with
      the next token id;
    - ``("release", slot)`` / ``("shutdown",)`` — drop state / exit.

    Every rank executes every command, so collectives inside a forward
    line up; the host asserts all ranks replied the same token — a
    per-step distributed consistency check.  Queues are created before
    the runtime starts, which makes them usable under ``ProcessRuntime``:
    it forks, so pre-existing ``multiprocessing.Queue`` ends survive into
    the children.
    """

    def __init__(self, system, runtime=None, timeout: float = 60.0, attention: str = "gathered"):
        from repro.cluster.process_runtime import ProcessRuntime, resolve_runtime
        from repro.core.complexity import DECODE_ATTENTION_MODES

        if attention not in DECODE_ATTENTION_MODES:
            raise ValueError(
                f"attention must be one of {DECODE_ATTENTION_MODES}, got {attention!r}"
            )
        self.system = system
        self.k = system.k
        self.timeout = timeout
        self.attention = attention
        # A resident session returns worker results only at shutdown, so the
        # process runtime's no-progress watchdog needs the session-lifetime
        # timeout, not the per-recv default.
        self._runtime = resolve_runtime(runtime, self.k, timeout=timeout)
        if isinstance(self._runtime, ProcessRuntime):
            import multiprocessing as mp

            self._commands = [mp.Queue() for _ in range(self.k)]
            self._replies = [mp.Queue() for _ in range(self.k)]
        else:
            self._commands = [queue.Queue() for _ in range(self.k)]
            self._replies = [queue.Queue() for _ in range(self.k)]
        self._thread: threading.Thread | None = None
        self._error: BaseException | None = None
        self._closed = False

    # -- lifecycle -------------------------------------------------------------

    def _serve(self) -> None:
        from repro.systems.decode import (
            decode_layer_spans,
            decode_stats_wire,
            fresh_shards,
            sharded_decode_step,
        )
        from repro.tensor.workspace import Workspace

        system = self.system
        attention = self.attention
        stats_dtype, _ = decode_stats_wire(system.wire_dtype)
        commands, replies = self._commands, self._replies

        def worker(ctx):
            sessions: dict[int, tuple] = {}

            def gather_kv(k_shard, v_shard):
                return ctx.all_gather(k_shard, axis=1), ctx.all_gather(v_shard, axis=1)

            def gather_stats(packed):
                wire = packed.astype(stats_dtype, copy=False)
                return ctx.all_gather(wire[None], axis=0).astype(np.float32)

            while True:
                command = commands[ctx.rank].get()
                op = command[0]
                try:
                    if op == "begin":
                        _, slot, capacity = command
                        layer_parts = decode_layer_spans(system, capacity)
                        sessions[slot] = (
                            layer_parts,
                            fresh_shards(layer_parts, ctx.rank),
                            Workspace(),
                        )
                        reply = ("ok", None)
                    elif op == "forward":
                        _, slot, new_ids, offset = command
                        layer_parts, shards, workspace = sessions[slot]
                        next_id = sharded_decode_step(
                            system.model, layer_parts, shards, ctx.rank,
                            new_ids, offset, gather_kv, workspace=workspace,
                            attention=attention, gather_stats=gather_stats,
                        )
                        reply = ("ok", next_id)
                    elif op == "release":
                        sessions.pop(command[1], None)
                        reply = ("ok", None)
                    elif op == "shutdown":
                        replies[ctx.rank].put(("ok", None))
                        return None
                    else:
                        raise ValueError(f"unknown session command {op!r}")
                except Exception as exc:  # reply first so the host fails loudly
                    replies[ctx.rank].put(("error", f"{type(exc).__name__}: {exc}"))
                    raise
                replies[ctx.rank].put(reply)

        try:
            self._runtime.run(worker)
        except BaseException as exc:
            self._error = exc

    def _ensure_started(self) -> None:
        if self._closed:
            raise RuntimeError("decode session is closed")
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._serve, name="decode-session", daemon=True
            )
            self._thread.start()

    def _command(self, payload: tuple):
        """Send one command to every rank and collect every reply."""
        self._ensure_started()
        for rank in range(self.k):
            self._commands[rank].put(payload)
        values = []
        for rank in range(self.k):
            try:
                status, value = self._replies[rank].get(timeout=self.timeout)
            except queue.Empty:
                detail = f": {self._error!r}" if self._error else ""
                raise RuntimeError(
                    f"decode session rank {rank} did not reply to {payload[0]!r} "
                    f"within {self.timeout}s{detail}"
                ) from self._error
            if status != "ok":
                raise RuntimeError(f"decode session rank {rank} failed: {value}")
            values.append(value)
        return values

    # -- the command surface ---------------------------------------------------

    def begin(self, slot: int, capacity: int) -> None:
        self._command(("begin", slot, capacity))

    def forward(self, slot: int, new_ids: list[int], offset: int) -> int:
        values = self._command(("forward", slot, [int(t) for t in new_ids], int(offset)))
        first = values[0]
        for rank, value in enumerate(values):
            if value != first:
                raise AssertionError(
                    f"rank {rank} decoded token {value} where rank 0 decoded {first}"
                )
        return first

    def release(self, slot: int) -> None:
        self._command(("release", slot))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._thread is not None:
            for rank in range(self.k):
                self._commands[rank].put(("shutdown",))
            self._thread.join(timeout=self.timeout)

    def __enter__(self) -> "DecodeSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class VoltageDecodeSequencer:
    """Distributed greedy decoding with a position-sharded KV cache.

    The engine-facing contract matches :class:`GPT2CachedSequencer` (same
    state machine, same prompts, same offline reference), but every
    forward runs on ``K`` resident ranks through a :class:`DecodeSession`:
    each rank holds only its span of each layer's K/V and reassembles the
    full cache with lossless all-gathers, so the emitted tokens are
    bit-identical to single-device ``generate_cached`` — interleaving and
    preemption permute which step runs next, never what a step computes.

    Slots carry no host-side KV state (``num_layers == 0``): the shard
    caches live rank-side, keyed by slot index, and a re-``begin`` on a
    slot replaces them (preemption restart).  Use as a context manager or
    call :meth:`close` to shut the session down.
    """

    num_layers = 0  # KV shards live rank-side in the session, not in engine slots

    def __init__(
        self,
        system,
        max_new_tokens: int = 8,
        step_cost: Callable[[int, int], float] | None = None,
        prompt_seed: int = 0,
        runtime=None,
        session_timeout: float = 60.0,
        attention: str = "gathered",
    ):
        """``attention`` selects the decode mode the resident ranks run:
        ``"gathered"`` (lossless per-step K/V all-gather, bit-identical to
        ``generate_cached``) or ``"distributed"`` (local-shard attention
        with the log-sum-exp combine — exact up to float tolerance, per-step
        wire volume flat in the sequence length)."""
        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        self.system = system
        self.model = system.model
        self.max_new_tokens = max_new_tokens
        self.step_cost = step_cost
        self.prompt_seed = prompt_seed
        self.runtime = runtime
        self.session_timeout = session_timeout
        self.attention = attention
        self.truncated_prompts: dict[int, tuple[int, int]] = {}
        self._session: DecodeSession | None = None

    @property
    def slot_capacity(self) -> int:
        return self.model.config.max_positions

    def session(self) -> DecodeSession:
        """The resident rank pool, started on first use."""
        if self._session is None:
            self._session = DecodeSession(
                self.system, runtime=self.runtime, timeout=self.session_timeout,
                attention=self.attention,
            )
        return self._session

    def close(self) -> None:
        if self._session is not None:
            self._session.close()
            self._session = None

    def __enter__(self) -> "VoltageDecodeSequencer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- prompts (same derivation as GPT2CachedSequencer) ----------------------

    def prompt_for(self, request: Request) -> np.ndarray:
        return _synthetic_prompt(
            request,
            self.model.config.max_positions,
            self.model.config.vocab_size,
            self.prompt_seed,
            self.truncated_prompts,
        )

    def offline_reference(self, request: Request, prompt: np.ndarray | None = None) -> np.ndarray:
        prompt = prompt if prompt is not None else self.prompt_for(request)
        return self.model.generate_cached(prompt, max_new_tokens=self.max_new_tokens)

    # -- the state machine -----------------------------------------------------

    def begin(self, request: Request, prompt: np.ndarray, slot: KVSlot) -> _DecodeState:
        from repro.systems.decode import decode_capacity

        prompt = np.asarray(prompt)
        if prompt.ndim != 1 or prompt.size < 1:
            raise ValueError(f"prompt must be a non-empty 1-D id array, got {prompt.shape}")
        if prompt.size > self.model.config.max_positions:
            raise ValueError(
                f"prompt of {prompt.size} tokens exceeds max_positions "
                f"{self.model.config.max_positions}"
            )
        capacity = decode_capacity(self.model, prompt.size, self.max_new_tokens)
        self.session().begin(slot.index, capacity)
        return _DecodeState(
            request=request, slot=slot, ids=[int(t) for t in prompt], prompt_len=prompt.size
        )

    def step(self, state: _DecodeState) -> tuple[bool, float | None]:
        if state.done:
            raise ValueError(f"request {state.request.id} already finished")
        max_positions = self.model.config.max_positions
        session = self.session()
        if not state.prefilled:
            cost = self._cost(len(state.ids), 0)
            state.next_id = session.forward(state.slot.index, state.ids, 0)
            state.prefilled = True
            if self.max_new_tokens == 0 or len(state.ids) >= max_positions:
                state.done = True
                session.release(state.slot.index)
            return state.done, cost
        state.ids.append(state.next_id)
        state.emitted += 1
        if state.emitted >= self.max_new_tokens or len(state.ids) >= max_positions:
            state.done = True
            session.release(state.slot.index)
            return True, 0.0 if self.step_cost is not None else None
        cost = self._cost(1, len(state.ids) - 1)
        state.next_id = session.forward(state.slot.index, [state.ids[-1]], len(state.ids) - 1)
        return False, cost

    def _cost(self, new_positions: int, cache_len: int) -> float | None:
        if self.step_cost is None:
            return None
        return self.step_cost(new_positions, cache_len)

    def result(self, state: _DecodeState) -> np.ndarray:
        if not state.done:
            raise ValueError(f"request {state.request.id} is still decoding")
        return np.asarray(state.ids, dtype=np.int64)
