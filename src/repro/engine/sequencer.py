"""Sequencers: the model-execution half of the engine, one step at a time.

A sequencer owns *how* a request computes; the engine owns *when*.  The
contract is a tiny state machine:

- ``begin(request, prompt, slot)`` binds a request to a KV slot and returns
  an opaque per-request state (no model compute happens here);
- ``step(state)`` runs exactly one token-step of model compute and returns
  ``(done, virtual_cost)`` — ``virtual_cost`` is the simulated seconds to
  charge a :class:`~repro.engine.clock.VirtualClock` (None means "charge
  measured wall time", the right default under a wall clock);
- ``result(state)`` is the finished request's output.

Two implementations:

- :class:`GPT2CachedSequencer` — greedy KV-cached decoding, *bit-identical*
  to :meth:`repro.models.gpt2.GPT2Model.generate_cached` for the same
  prompt: every forward it runs is literally the same op sequence
  (embedding add, ``layer_forward_cached`` per layer, final-norm LM head),
  against the slot's caches instead of a private one.  Buffer capacity is
  the only difference, and capacity never changes values.  This is what
  makes the engine's soak guarantee provable: interleaving, preemption and
  restart permute *which* step runs next, never what a step computes.
- :class:`VoltageForwardSequencer` — the paper's serving workload: one
  distributed forward pass per request on real threaded workers
  (:meth:`VoltageSystem.execute_threaded`), done in a single step.  The
  slot carries no KV state (``num_layers == 0``); the pool purely bounds
  how many distributed forwards may be in flight.

A preempted request is simply re-``begin``-ed later: greedy decoding is
deterministic, so recomputing from the prompt reproduces the discarded
steps exactly — correctness is preserved by construction, at the price of
redone work (counted by the engine as ``preemptions``).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro.models.cache import layer_forward_cached
from repro.serving.arrivals import Request
from repro.engine.slots import KVSlot

__all__ = ["GPT2CachedSequencer", "VoltageForwardSequencer"]


@dataclass
class _DecodeState:
    """One in-flight greedy decode bound to a KV slot."""

    request: Request
    slot: KVSlot
    ids: list[int]
    prompt_len: int
    next_id: int | None = None
    emitted: int = 0
    prefilled: bool = False
    done: bool = False


class GPT2CachedSequencer:
    """Token-step greedy decoding over slot-owned KV caches."""

    def __init__(
        self,
        model,
        max_new_tokens: int = 8,
        step_cost: Callable[[int, int], float] | None = None,
        prompt_seed: int = 0,
    ):
        """``step_cost(new_positions, cache_len_before)`` supplies the
        deterministic virtual-time cost of one forward; leave None to charge
        measured wall time (wall-clock serving).  ``prompt_seed`` namespaces
        the synthetic prompts :meth:`prompt_for` derives from request ids.
        """
        if max_new_tokens < 0:
            raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
        self.model = model
        self.max_new_tokens = max_new_tokens
        self.step_cost = step_cost
        self.prompt_seed = prompt_seed

    # -- slot geometry the engine builds its pool from -------------------------

    @property
    def num_layers(self) -> int:
        return self.model.num_layers

    @property
    def slot_capacity(self) -> int:
        return self.model.config.max_positions

    # -- prompts ---------------------------------------------------------------

    def prompt_for(self, request: Request) -> np.ndarray:
        """Deterministic synthetic prompt: ``request.n`` tokens seeded by
        ``(prompt_seed, request.id)`` — the soak tests and the serve bench
        replay the same prompts offline to check bit-identity."""
        rng = np.random.default_rng([self.prompt_seed, request.id])
        n = min(request.n, self.model.config.max_positions)
        return rng.integers(0, self.model.config.vocab_size, size=n, dtype=np.int64)

    def offline_reference(self, request: Request, prompt: np.ndarray | None = None) -> np.ndarray:
        """The ground-truth output: a fresh offline ``generate_cached`` run."""
        prompt = prompt if prompt is not None else self.prompt_for(request)
        return self.model.generate_cached(prompt, max_new_tokens=self.max_new_tokens)

    # -- the state machine -----------------------------------------------------

    def begin(self, request: Request, prompt: np.ndarray, slot: KVSlot) -> _DecodeState:
        if slot.length != 0:
            raise ValueError(f"slot {slot.index} was handed over dirty (length {slot.length})")
        prompt = np.asarray(prompt)
        if prompt.ndim != 1 or prompt.size < 1:
            raise ValueError(f"prompt must be a non-empty 1-D id array, got {prompt.shape}")
        if prompt.size > self.model.config.max_positions:
            raise ValueError(
                f"prompt of {prompt.size} tokens exceeds max_positions "
                f"{self.model.config.max_positions}"
            )
        return _DecodeState(
            request=request, slot=slot, ids=[int(t) for t in prompt], prompt_len=prompt.size
        )

    def _forward(self, state: _DecodeState, new_ids: list[int], offset: int) -> int:
        """One model forward over the new positions — the exact op sequence of
        ``generate_cached``'s inner ``step``, against the slot's caches."""
        model = self.model
        positions = np.arange(offset, offset + len(new_ids))
        x = model.embeddings.word(np.asarray(new_ids, dtype=np.int64))
        x = x + model.embeddings.position(positions)
        for layer, layer_cache in zip(model.layers, state.slot.caches):
            x = layer_forward_cached(layer, x, layer_cache, workspace=state.slot.workspace)
        logits = model.ln_f(x[-1]) @ model.embeddings.word.weight.data.T
        return int(np.argmax(logits))

    def step(self, state: _DecodeState) -> tuple[bool, float | None]:
        if state.done:
            raise ValueError(f"request {state.request.id} already finished")
        max_positions = self.model.config.max_positions
        if not state.prefilled:
            cost = self._cost(len(state.ids), 0)
            state.next_id = self._forward(state, state.ids, 0)
            state.prefilled = True
            if self.max_new_tokens == 0 or len(state.ids) >= max_positions:
                state.done = True
            return state.done, cost
        # one iteration of generate_cached's greedy loop: append the pending
        # token, then (unless finished) project it through the cache
        state.ids.append(state.next_id)
        state.emitted += 1
        if state.emitted >= self.max_new_tokens or len(state.ids) >= max_positions:
            state.done = True
            return True, 0.0 if self.step_cost is not None else None
        cost = self._cost(1, len(state.ids) - 1)
        state.next_id = self._forward(state, [state.ids[-1]], len(state.ids) - 1)
        return False, cost

    def _cost(self, new_positions: int, cache_len: int) -> float | None:
        if self.step_cost is None:
            return None
        return self.step_cost(new_positions, cache_len)

    def result(self, state: _DecodeState) -> np.ndarray:
        if not state.done:
            raise ValueError(f"request {state.request.id} is still decoding")
        return np.asarray(state.ids, dtype=np.int64)


@dataclass
class _ForwardState:
    """One pending single-forward (classification-style) request."""

    request: Request
    slot: KVSlot
    ids: np.ndarray
    output: np.ndarray | None = None
    done: bool = False
    comm_stats: list = field(default_factory=list)


class VoltageForwardSequencer:
    """One distributed forward per request via the threaded Voltage runtime."""

    num_layers = 0  # slots carry no KV state; the pool only bounds concurrency

    def __init__(
        self,
        system,
        service_time: Callable[[int], float] | None = None,
        prompt_seed: int = 0,
    ):
        """``system`` is a :class:`~repro.systems.voltage.VoltageSystem`;
        ``service_time(n)`` supplies the virtual-time cost of one request
        (e.g. the analytic Voltage latency), None charges measured wall."""
        self.system = system
        self.service_time = service_time
        self.prompt_seed = prompt_seed

    @property
    def slot_capacity(self) -> int:
        return self.system.model.config.max_positions

    def prompt_for(self, request: Request) -> np.ndarray:
        rng = np.random.default_rng([self.prompt_seed, request.id])
        n = min(request.n, self.system.model.config.max_positions)
        return rng.integers(0, self.system.model.config.vocab_size, size=n, dtype=np.int64)

    def offline_reference(self, request: Request, prompt: np.ndarray | None = None) -> np.ndarray:
        prompt = prompt if prompt is not None else self.prompt_for(request)
        output, _ = self.system.execute_threaded(prompt)
        return output

    def begin(self, request: Request, prompt: np.ndarray, slot: KVSlot) -> _ForwardState:
        return _ForwardState(request=request, slot=slot, ids=np.asarray(prompt))

    def step(self, state: _ForwardState) -> tuple[bool, float | None]:
        if state.done:
            raise ValueError(f"request {state.request.id} already finished")
        state.output, state.comm_stats = self.system.execute_threaded(state.ids)
        state.done = True
        cost = self.service_time(state.ids.shape[0]) if self.service_time else None
        return True, cost

    def result(self, state: _ForwardState) -> np.ndarray:
        if not state.done:
            raise ValueError(f"request {state.request.id} has not run")
        return state.output
