"""Serving statistics: latency percentiles, throughput, utilisation."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.obs.metrics import MetricsRegistry, get_registry
from repro.obs.tracer import current_tracer
from repro.serving.arrivals import Request

__all__ = ["ServedRequest", "ServingStats", "record_serving_metrics"]


@dataclass(frozen=True)
class ServedRequest:
    """One request's lifecycle: arrival → service start → completion."""

    request: Request
    start: float
    finish: float

    def __post_init__(self) -> None:
        if not (self.request.arrival <= self.start <= self.finish):
            raise ValueError(
                f"inconsistent lifecycle: arrival={self.request.arrival}, "
                f"start={self.start}, finish={self.finish}"
            )

    @property
    def latency(self) -> float:
        """End-to-end latency the user sees (queueing + service)."""
        return self.finish - self.request.arrival

    @property
    def waiting(self) -> float:
        """Time spent queued before service began."""
        return self.start - self.request.arrival

    @property
    def service(self) -> float:
        return self.finish - self.start

    @property
    def deadline_missed(self) -> bool:
        """True when the request carried a deadline and finished after it."""
        deadline = self.request.deadline
        return deadline is not None and self.finish > deadline


@dataclass(frozen=True)
class ServingStats:
    """Aggregate view over one serving run."""

    count: int
    mean_latency: float
    p50_latency: float
    p95_latency: float
    p99_latency: float
    max_latency: float
    mean_waiting: float
    throughput_rps: float
    makespan: float
    deadline_count: int = 0
    deadline_misses: int = 0

    @classmethod
    def from_served(cls, served: list[ServedRequest]) -> "ServingStats":
        """Aggregate a run; an empty run (every request shed, or none offered)
        yields the all-zero stats rather than raising — an autoscaled fleet
        legitimately runs replicas that never receive a request."""
        if not served:
            return cls(
                count=0, mean_latency=0.0, p50_latency=0.0, p95_latency=0.0,
                p99_latency=0.0, max_latency=0.0, mean_waiting=0.0,
                throughput_rps=0.0, makespan=0.0,
            )
        latencies = np.array([s.latency for s in served])
        first_arrival = min(s.request.arrival for s in served)
        makespan = max(s.finish for s in served) - first_arrival
        return cls(
            count=len(served),
            mean_latency=float(latencies.mean()),
            p50_latency=float(np.percentile(latencies, 50)),
            p95_latency=float(np.percentile(latencies, 95)),
            p99_latency=float(np.percentile(latencies, 99)),
            max_latency=float(latencies.max()),
            mean_waiting=float(np.mean([s.waiting for s in served])),
            throughput_rps=len(served) / makespan if makespan > 0 else float("inf"),
            makespan=float(makespan),
            deadline_count=sum(1 for s in served if s.request.deadline is not None),
            deadline_misses=sum(1 for s in served if s.deadline_missed),
        )

    @property
    def deadline_miss_rate(self) -> float:
        """Fraction of deadline-carrying requests that finished late (0.0
        when no request declared a deadline)."""
        return self.deadline_misses / self.deadline_count if self.deadline_count else 0.0

    def summary(self) -> str:
        text = (
            f"{self.count} requests | latency mean {self.mean_latency * 1e3:.1f} ms, "
            f"p50 {self.p50_latency * 1e3:.1f}, p95 {self.p95_latency * 1e3:.1f}, "
            f"p99 {self.p99_latency * 1e3:.1f} ms | wait {self.mean_waiting * 1e3:.1f} ms "
            f"| {self.throughput_rps:.2f} req/s"
        )
        if self.deadline_count:
            text += (
                f" | {self.deadline_misses}/{self.deadline_count} deadline misses"
            )
        return text


def queue_depth_at_arrivals(served: list[ServedRequest]) -> list[int]:
    """Queue depth seen by each request on arrival: peers that have already
    arrived but not yet started service (the arriving request excluded)."""
    depths = []
    for s in served:
        t = s.request.arrival
        depths.append(
            sum(1 for o in served if o is not s and o.request.arrival <= t < o.start)
        )
    return depths


def record_serving_metrics(
    server: str,
    served: list[ServedRequest],
    registry: MetricsRegistry | None = None,
) -> None:
    """Record one serving run into the metrics registry and the active trace.

    Per server shape (labelled ``server=<shape>``): wait/service/latency
    histograms, a request counter, per-arrival queue-depth samples and the
    peak queue depth.  When a tracer is installed, each request's service
    window additionally lands on a ``serving:<shape>`` modeled track, so a
    Chrome trace of a serving sweep shows the queue dynamics directly.
    """
    registry = registry if registry is not None else get_registry()
    wait = registry.histogram("serving.wait_seconds", server=server)
    service = registry.histogram("serving.service_seconds", server=server)
    latency = registry.histogram("serving.latency_seconds", server=server)
    for s in served:
        wait.observe(s.waiting)
        service.observe(s.service)
        latency.observe(s.latency)
    registry.counter("serving.requests_total", server=server).inc(len(served))
    misses = sum(1 for s in served if s.deadline_missed)
    if misses:
        registry.counter("serving.deadline_misses_total", server=server).inc(misses)
    depth = registry.histogram("serving.queue_depth", server=server)
    depths = queue_depth_at_arrivals(served)
    for d in depths:
        depth.observe(d)
    peak = registry.gauge("serving.peak_queue_depth", server=server)
    peak.set(max([*depths, peak.value]))

    tracer = current_tracer()
    if tracer.enabled:
        for s in served:
            tracer.record_at(
                f"request {s.request.id}",
                cat="serving",
                kind="service",
                start_s=s.start,
                duration_s=s.service,
                track=f"serving:{server}",
                arrival=s.request.arrival,
                wait=s.waiting,
                n=s.request.n,
            )
