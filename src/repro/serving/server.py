"""Edge serving simulators: request streams through each deployment strategy.

Three server shapes, matching how each parallelism occupies the cluster:

- :class:`MonolithicServer` — Voltage / tensor-parallel / single-device: one
  request holds *all* devices for its whole service time (the collectives
  are barriers), so requests serialise FIFO.  Lowest per-request latency,
  throughput capped at ``1/service_time``.
- :class:`PerDeviceServer` — data parallelism: K independent full-replica
  workers; requests dispatch to the earliest-free device.  K× throughput,
  single-device latency.
- :class:`PipelineServer` — layer stages: a request flows through K stage
  resources, overlapping with its neighbours.  High throughput, latency no
  better than single-device plus hops.

Service-time models are injected as callables ``n -> seconds`` (built from
:mod:`repro.bench.analytic` by :func:`service_models`), keeping the queueing
logic independent of the latency calibration.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.cluster.simulator import Resource
from repro.serving.arrivals import Request
from repro.serving.stats import ServedRequest, ServingStats, record_serving_metrics

__all__ = ["MonolithicServer", "PerDeviceServer", "PipelineServer", "service_models"]


def _validate(requests: Sequence[Request]) -> list[Request]:
    if not requests:
        raise ValueError("need at least one request")
    return sorted(requests)


class MonolithicServer:
    """All devices serve one request at a time (barrier-style systems)."""

    shape = "monolithic"

    def __init__(self, service_time: Callable[[int], float]):
        self.service_time = service_time

    def serve(self, requests: Sequence[Request]) -> list[ServedRequest]:
        cluster = Resource("cluster")
        served = []
        for request in _validate(requests):
            start, finish = cluster.reserve(request.arrival, self.service_time(request.n))
            served.append(ServedRequest(request=request, start=start, finish=finish))
        record_serving_metrics(self.shape, served)
        return served

    def run(self, requests: Sequence[Request]) -> ServingStats:
        return ServingStats.from_served(self.serve(requests))


class PerDeviceServer:
    """K independent replicas; each request goes to the earliest-free one."""

    shape = "per-device"

    def __init__(self, service_time: Callable[[int], float], num_devices: int):
        if num_devices < 1:
            raise ValueError(f"need >= 1 device, got {num_devices}")
        self.service_time = service_time
        self.num_devices = num_devices

    def serve(self, requests: Sequence[Request]) -> list[ServedRequest]:
        devices = [Resource(f"replica-{i}") for i in range(self.num_devices)]
        served = []
        for request in _validate(requests):
            # earliest-completion dispatch: pick the device free soonest
            device = min(devices, key=lambda d: max(d.available_at, request.arrival))
            start, finish = device.reserve(request.arrival, self.service_time(request.n))
            served.append(ServedRequest(request=request, start=start, finish=finish))
        record_serving_metrics(self.shape, served)
        return served

    def run(self, requests: Sequence[Request]) -> ServingStats:
        return ServingStats.from_served(self.serve(requests))


class PipelineServer:
    """Layer-stage pipeline: per-stage FIFO resources plus inter-stage hops."""

    shape = "pipeline"

    def __init__(
        self,
        stage_times: Callable[[int], Sequence[float]],
        hop_time: Callable[[int], float],
    ):
        self.stage_times = stage_times
        self.hop_time = hop_time

    def serve(self, requests: Sequence[Request]) -> list[ServedRequest]:
        requests = _validate(requests)
        num_stages = len(self.stage_times(requests[0].n))
        stages = [Resource(f"stage-{i}") for i in range(num_stages)]
        links = [Resource(f"link-{i}") for i in range(num_stages + 1)]
        served = []
        for request in requests:
            times = self.stage_times(request.n)
            if len(times) != num_stages:
                raise ValueError("stage count must not vary across requests")
            hop = self.hop_time(request.n)
            _, t = links[0].reserve(request.arrival, hop)
            start = None
            for stage, resource in enumerate(stages):
                begin, t = resource.reserve(t, times[stage])
                start = begin if start is None else start
                _, t = links[stage + 1].reserve(t, hop)
            served.append(ServedRequest(request=request, start=start, finish=t))
        record_serving_metrics(self.shape, served)
        return served

    def run(self, requests: Sequence[Request]) -> ServingStats:
        return ServingStats.from_served(self.serve(requests))


def service_models(config, cluster, pre_flops: int = 0, post_flops: int = 0) -> dict:
    """Build the three servers' timing callables from the analytic models.

    Returns ``{"voltage": MonolithicServer, "tensor-parallel":
    MonolithicServer, "single-device": ..., "data-parallel": PerDeviceServer,
    "pipeline": PipelineServer}`` all calibrated for (config, cluster).
    """
    from repro.bench import analytic
    from repro.core.partition import split_evenly
    from repro.systems.base import activation_bytes

    def voltage_time(n: int) -> float:
        return analytic.voltage_latency(
            config, n, cluster, pre_flops=pre_flops, post_flops=post_flops
        ).total_seconds

    def tensor_time(n: int) -> float:
        return analytic.tensor_parallel_latency(
            config, n, cluster, pre_flops=pre_flops, post_flops=post_flops
        ).total_seconds

    def single_time(n: int) -> float:
        return analytic.single_device_latency(
            config, n, cluster.with_num_devices(1),
            pre_flops=pre_flops, post_flops=post_flops,
        ).total_seconds

    from repro.core import complexity
    from repro.core.complexity import EQ3

    layer_flops = lambda n: complexity.layer_flops(  # noqa: E731
        n, n, config.hidden_size, config.head_dim, config.num_heads,
        config.ffn_dim, order=EQ3,
    )

    def stage_times(n: int) -> list[float]:
        sizes = split_evenly(config.num_layers, cluster.num_devices)
        return [
            device.compute_seconds(size * layer_flops(n))
            for device, size in zip(cluster.devices, sizes)
        ]

    def hop_time(n: int) -> float:
        return cluster.network.transfer_seconds(activation_bytes(n, config.hidden_size))

    return {
        "voltage": MonolithicServer(voltage_time),
        "tensor-parallel": MonolithicServer(tensor_time),
        "single-device": MonolithicServer(single_time),
        "data-parallel": PerDeviceServer(single_time, cluster.num_devices),
        "pipeline": PipelineServer(stage_times, hop_time),
    }
