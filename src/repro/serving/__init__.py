"""Edge request serving: arrival processes, queueing simulators, statistics.

Quantifies the paper's deployment argument (Section V-C): under sporadic,
batch-size-1 arrivals, per-request latency is what matters, and only
Voltage both cuts latency and keeps outputs exact; pipeline and data
parallelism buy throughput that sporadic traffic cannot use.
"""

from repro.serving.arrivals import Request, bursty_arrivals, poisson_arrivals, uniform_arrivals
from repro.serving.server import (
    MonolithicServer,
    PerDeviceServer,
    PipelineServer,
    service_models,
)
from repro.serving.stats import ServedRequest, ServingStats

__all__ = [
    "MonolithicServer",
    "PerDeviceServer",
    "PipelineServer",
    "Request",
    "ServedRequest",
    "ServingStats",
    "bursty_arrivals",
    "poisson_arrivals",
    "service_models",
    "uniform_arrivals",
]
