"""Request arrival processes for edge serving experiments.

The paper's core motivation for rejecting pipeline/data parallelism is the
*arrival pattern*: "inference requests typically arrive in a sporadic manner
with small batch sizes, often only a single input."  These generators make
that pattern (and its alternatives) concrete so the serving simulator can
quantify the claim: Poisson (sporadic), uniform (steady), and bursty
(on/off) processes, all deterministic under a seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

__all__ = [
    "Request",
    "uniform_arrivals",
    "poisson_arrivals",
    "bursty_arrivals",
    "heavy_tail_arrivals",
]


@dataclass(frozen=True, order=True)
class Request:
    """One inference request: when it arrives and how long its input is.

    ``deadline`` (absolute, same time base as ``arrival``) and ``priority``
    (higher = more urgent) are optional SLO annotations consumed by the
    online engine's scheduler and by the deadline-miss accounting of
    :class:`~repro.serving.stats.ServingStats`; both default to no-ops and
    are excluded from ordering so arrival-sorted streams behave exactly as
    before.  ``tenant`` optionally names the traffic source (multi-tenant
    traces; the fleet's session-affinity router hashes it) and is likewise
    excluded from ordering.
    """

    arrival: float
    n: int
    id: int = 0
    deadline: float | None = field(default=None, compare=False)
    priority: int = field(default=0, compare=False)
    tenant: str | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.arrival < 0:
            raise ValueError(f"arrival time must be >= 0, got {self.arrival}")
        if self.n < 1:
            raise ValueError(f"sequence length must be >= 1, got {self.n}")
        if self.deadline is not None and self.deadline <= self.arrival:
            raise ValueError(
                f"deadline must fall after arrival: "
                f"deadline={self.deadline}, arrival={self.arrival}"
            )

    def with_slo(self, slo: float | None = None, priority: int | None = None) -> "Request":
        """Copy with a relative SLO budget (``deadline = arrival + slo``)."""
        if slo is not None and slo <= 0:
            raise ValueError(f"slo budget must be > 0, got {slo}")
        return replace(
            self,
            deadline=self.arrival + slo if slo is not None else self.deadline,
            priority=self.priority if priority is None else priority,
        )


def _lengths(count: int, n_tokens: int | tuple[int, int], rng: np.random.Generator):
    if isinstance(n_tokens, tuple):
        low, high = n_tokens
        if not (1 <= low <= high):
            raise ValueError(f"invalid length range {n_tokens}")
        return rng.integers(low, high + 1, size=count)
    if n_tokens < 1:
        raise ValueError(f"sequence length must be >= 1, got {n_tokens}")
    return np.full(count, n_tokens)


def uniform_arrivals(
    count: int,
    interval: float,
    n_tokens: int | tuple[int, int] = 200,
    seed: int = 0,
) -> list[Request]:
    """Steady stream: one request every ``interval`` seconds."""
    if count < 1 or interval < 0:
        raise ValueError(f"need count >= 1 and interval >= 0, got {count}, {interval}")
    rng = np.random.default_rng(seed)
    lengths = _lengths(count, n_tokens, rng)
    return [
        Request(arrival=i * interval, n=int(n), id=i) for i, n in enumerate(lengths)
    ]


def poisson_arrivals(
    count: int,
    rate: float,
    n_tokens: int | tuple[int, int] = 200,
    seed: int = 0,
) -> list[Request]:
    """Sporadic stream: exponential inter-arrival gaps at ``rate`` req/s."""
    if count < 1 or rate <= 0:
        raise ValueError(f"need count >= 1 and rate > 0, got {count}, {rate}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=count)
    times = np.cumsum(gaps)
    lengths = _lengths(count, n_tokens, rng)
    return [
        Request(arrival=float(t), n=int(n), id=i)
        for i, (t, n) in enumerate(zip(times, lengths))
    ]


def bursty_arrivals(
    bursts: int,
    burst_size: int,
    burst_gap: float,
    within_gap: float = 0.0,
    n_tokens: int | tuple[int, int] = 200,
    seed: int = 0,
) -> list[Request]:
    """On/off traffic: ``bursts`` clumps of ``burst_size`` back-to-back requests."""
    if bursts < 1 or burst_size < 1 or burst_gap < 0 or within_gap < 0:
        raise ValueError("invalid burst parameters")
    rng = np.random.default_rng(seed)
    lengths = _lengths(bursts * burst_size, n_tokens, rng)
    requests = []
    index = 0
    for burst in range(bursts):
        base = burst * burst_gap
        for j in range(burst_size):
            requests.append(
                Request(arrival=base + j * within_gap, n=int(lengths[index]), id=index)
            )
            index += 1
    return requests


def heavy_tail_arrivals(
    count: int,
    rate: float,
    median_tokens: int = 32,
    sigma: float = 0.8,
    max_tokens: int = 1024,
    seed: int = 0,
) -> list[Request]:
    """Poisson arrivals with lognormal (heavy-tailed) prompt lengths.

    Real prompt-length distributions are right-skewed: most requests are
    short, a few are very long and dominate service time.  Lengths are drawn
    ``round(exp(N(ln median, sigma²)))`` and clipped to ``[1, max_tokens]``,
    so ``median_tokens`` is the distribution's median and ``sigma`` controls
    how heavy the tail is (0 collapses to the constant ``median_tokens``).
    """
    if count < 1 or rate <= 0:
        raise ValueError(f"need count >= 1 and rate > 0, got {count}, {rate}")
    if median_tokens < 1 or not (1 <= median_tokens <= max_tokens):
        raise ValueError(
            f"need 1 <= median_tokens <= max_tokens, got {median_tokens}, {max_tokens}"
        )
    if sigma < 0:
        raise ValueError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate, size=count)
    times = np.cumsum(gaps)
    lengths = np.clip(
        np.round(rng.lognormal(mean=np.log(median_tokens), sigma=sigma, size=count)),
        1,
        max_tokens,
    ).astype(int)
    return [
        Request(arrival=float(t), n=int(n), id=i)
        for i, (t, n) in enumerate(zip(times, lengths))
    ]
