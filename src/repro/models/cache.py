"""KV-cache incremental decoding for causal transformer layers.

The paper measures one full forward pass; serving autoregressive generation
naively re-runs that pass per token (O(T²) projections over a T-token
decode).  The standard fix is to cache each layer's K and V: a decode step
then projects only the *new* positions and attends them against the cached
keys/values — position-wise partitioning still applies to everything the
cache does not already cover.

Allocation behaviour (INTERNALS §9): the cache owns one preallocated
``(H, capacity, F_H)`` buffer per tensor, grown geometrically, so a T-token
decode performs O(T) element writes instead of the O(T²) copies of a
concatenate-per-append scheme.  ``append`` always copies the new positions
in and returns *views* of the cached prefix; callers that need the hidden
states to outlive the next ``append`` must copy.  Callers that know the
final sequence length up front (e.g. ``generate_cached``) should pass a
``capacity`` hint so the buffers are allocated exactly once.

Works for both normalisation placements; only causal layers may use a cache
(bidirectional layers would need future tokens that do not exist yet).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.orders import merge_heads, split_heads
from repro.models.layer import TransformerLayer
from repro.tensor import functional as F
from repro.tensor.workspace import Workspace

__all__ = [
    "LayerKVCache",
    "KVCache",
    "layer_forward_cached",
    "layer_forward_cached_kv",
    "layer_forward_cached_attention",
    "shard_kv_cache",
    "merge_kv_shards",
    "shard_kv_views",
    "DecoderLayerKVCache",
    "decoder_layer_forward_cached",
]


class LayerKVCache:
    """One layer's cached key/value tensors, ``(H, T, F_H)`` each.

    ``capacity`` pre-sizes the backing buffers (in positions); without it the
    first append sizes them and later growth doubles, so appends stay
    amortised O(1) allocations either way.  ``allocations`` counts backing
    (re)allocations — the perf tests pin it to 1 when a hint is given.
    """

    def __init__(self, capacity: int | None = None):
        self._k_buf: np.ndarray | None = None
        self._v_buf: np.ndarray | None = None
        self._length = 0
        self._capacity_hint = capacity
        self.allocations = 0

    @property
    def k(self) -> np.ndarray | None:
        """View of the cached keys, ``(H, length, F_H)``; None before first append."""
        return None if self._k_buf is None else self._k_buf[:, : self._length]

    @property
    def v(self) -> np.ndarray | None:
        """View of the cached values, ``(H, length, F_H)``; None before first append."""
        return None if self._v_buf is None else self._v_buf[:, : self._length]

    @property
    def length(self) -> int:
        return self._length

    @property
    def capacity(self) -> int:
        """Positions the backing buffers can hold without reallocating."""
        return 0 if self._k_buf is None else self._k_buf.shape[1]

    def reserve(self, capacity: int) -> None:
        """Ensure room for ``capacity`` positions (allocates at most once)."""
        if self._k_buf is None:
            self._capacity_hint = max(capacity, self._capacity_hint or 0)
        elif self._k_buf.shape[1] < capacity:
            self._grow(capacity)

    def _grow(self, needed: int) -> None:
        new_cap = max(needed, 2 * self._k_buf.shape[1])
        k_buf = np.empty(
            (self._k_buf.shape[0], new_cap, self._k_buf.shape[2]), dtype=self._k_buf.dtype
        )
        v_buf = np.empty_like(k_buf)
        k_buf[:, : self._length] = self._k_buf[:, : self._length]
        v_buf[:, : self._length] = self._v_buf[:, : self._length]
        self._k_buf, self._v_buf = k_buf, v_buf
        self.allocations += 1

    def truncate(self, length: int) -> None:
        """Roll back to ``length`` cached positions without reallocating.

        The backing buffers (and their dtype) are kept, so a preempted or
        cancelled decode can release its positions and the next decode
        appends into the same memory — ``truncate(0)`` is how the engine's
        slot pool recycles a cache.  Only shrinking is allowed: positions
        beyond the current length do not exist and cannot be restored.
        """
        length = int(length)
        if not 0 <= length <= self._length:
            raise ValueError(
                f"truncate length must be in [0, {self._length}], got {length}"
            )
        self._length = length

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Copy new positions into the cache; returns views of the full K and V.

        The returned views are valid until the next ``append`` (growth may
        rebind the backing buffers).
        """
        if k_new.shape != v_new.shape:
            raise ValueError(f"K/V shapes disagree: {k_new.shape} vs {v_new.shape}")
        if k_new.dtype != v_new.dtype:
            raise ValueError(f"K/V dtypes disagree: {k_new.dtype} vs {v_new.dtype}")
        t = k_new.shape[1]
        if self._k_buf is None:
            cap = max(self._length + t, self._capacity_hint or 0)
            self._k_buf = np.empty((k_new.shape[0], cap, k_new.shape[2]), dtype=k_new.dtype)
            self._v_buf = np.empty_like(self._k_buf)
            self.allocations += 1
        else:
            if (
                k_new.shape[0] != self._k_buf.shape[0]
                or k_new.shape[2] != self._k_buf.shape[2]
            ):
                raise ValueError(
                    f"cache geometry mismatch: cached {self.k.shape}, new {k_new.shape}"
                )
            if k_new.dtype != self._k_buf.dtype:
                raise ValueError(
                    f"cache dtype mismatch: cached {self._k_buf.dtype}, new {k_new.dtype}"
                )
            if self._length + t > self._k_buf.shape[1]:
                self._grow(self._length + t)
        self._k_buf[:, self._length : self._length + t] = k_new
        self._v_buf[:, self._length : self._length + t] = v_new
        self._length += t
        return self.k, self.v


@dataclass
class KVCache:
    """Whole-model cache: one :class:`LayerKVCache` per transformer layer."""

    layers: list[LayerKVCache] = field(default_factory=list)

    @classmethod
    def empty(cls, num_layers: int, capacity: int | None = None) -> "KVCache":
        """``capacity`` (final sequence length, if known) pre-sizes every layer."""
        return cls(layers=[LayerKVCache(capacity=capacity) for _ in range(num_layers)])

    @property
    def length(self) -> int:
        """Positions already cached (uniform across layers by construction)."""
        return self.layers[0].length if self.layers else 0

    def truncate(self, length: int) -> None:
        """Roll back every layer to ``length`` positions (buffers kept)."""
        for layer in self.layers:
            layer.truncate(length)


def _project_qkv(
    attention, attn_input: np.ndarray, workspace: Workspace | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Fused QKV projection of the new positions, split into per-head views.

    Returns ``(q, k_new, v_new)``, each ``(H, t, F_H)`` — views into the
    workspace's ``qkv`` scratch when one is supplied, so they are valid
    until the next workspace request for that key.
    """
    t = attn_input.shape[0]
    heads = attention.num_heads
    width = heads * attention.head_dim
    dt = np.result_type(attn_input.dtype, attention.query.weight.data.dtype)

    if workspace is not None and attn_input.dtype == dt:
        qkv = attention.qkv_projection(attn_input, out=workspace.take("qkv", (t, 3 * width), dt))
    else:
        qkv = attention.qkv_projection(attn_input)
    q = split_heads(qkv[:, :width], heads)
    k_new = split_heads(qkv[:, width : 2 * width], heads)
    v_new = split_heads(qkv[:, 2 * width :], heads)
    return q, k_new, v_new


def _cached_attention(
    attention,
    attn_input: np.ndarray,
    extend_kv,
    offset: int,
    causal: bool,
    workspace: Workspace | None,
) -> np.ndarray:
    """Core cached attention: project QKV fused, extend the KV state, attend.

    ``extend_kv(k_new, v_new) -> (k_all, v_all)`` supplies how the new
    positions join the cached history — ``LayerKVCache.append`` for the
    single-device path, or a shard-append-then-all-gather closure for the
    position-sharded distributed decode.  Everything downstream of the
    returned ``(k_all, v_all)`` is the exact single-device op sequence, so
    any extension strategy that reconstructs the same K/V *values* yields
    bit-identical attention output (buffer identity/strides never change
    matmul results).

    Returns the merged ``(t, H·F_H)`` attended tensor (before the output
    projection).  All large intermediates (fused QKV, score matrix, per-head
    attended tensor) live in the workspace when one is supplied; the return
    value is a fresh array either way (``merge_heads`` copies), so it may
    safely outlive the next workspace request.
    """
    t = attn_input.shape[0]
    heads = attention.num_heads
    dt = np.result_type(attn_input.dtype, attention.query.weight.data.dtype)
    q, k_new, v_new = _project_qkv(attention, attn_input, workspace)
    k_all, v_all = extend_kv(k_new, v_new)
    total = k_all.shape[1]

    # math.sqrt (a weak Python float under NEP 50) keeps float32 hidden
    # states float32; np.sqrt(int) is a strong float64 scalar that silently
    # upcast every downstream tensor — including the LM-head matmul.
    scale = math.sqrt(attention.head_dim)
    if workspace is not None:
        scores = np.matmul(
            q, k_all.transpose(0, 2, 1), out=workspace.take("scores", (heads, t, total), dt)
        )
    else:
        scores = q @ k_all.transpose(0, 2, 1)
    np.divide(scores, scale, out=scores)
    if causal:
        scores[:, F.causal_mask(t, total, offset=offset)] = -1e30
    F.softmax(scores, axis=-1, out=scores)
    if workspace is not None:
        attended = np.matmul(
            scores, v_all, out=workspace.take("attended", (heads, t, attention.head_dim), dt)
        )
    else:
        attended = scores @ v_all
    return merge_heads(attended)


def layer_forward_cached(
    layer: TransformerLayer,
    x_new: np.ndarray,
    cache: LayerKVCache,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """One causal layer over the ``t`` newest positions, reusing the cache.

    ``x_new`` is ``(t, F)`` — the hidden states of positions
    ``[cache.length, cache.length + t)``.  Returns the layer output for
    exactly those positions and extends the cache in place.  Equivalent to
    ``layer.forward(full_x)[-t:]`` (asserted by the tests), at
    O(t·F²  + t·T·F) cost instead of O(T·F² + T²·F).

    ``workspace`` (optional, shared across layers and decode steps) backs
    the large per-step intermediates so a steady-state step allocates only
    its small ``(t, F)`` outputs.
    """
    return layer_forward_cached_kv(
        layer, x_new, cache.append, cache.length, workspace=workspace
    )


def layer_forward_cached_kv(
    layer: TransformerLayer,
    x_new: np.ndarray,
    extend_kv,
    offset: int,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """:func:`layer_forward_cached` with a pluggable KV-extension strategy.

    ``extend_kv(k_new, v_new) -> (k_all, v_all)`` replaces the cache append;
    ``offset`` is the number of positions already cached (globally — for a
    position-sharded cache this is the *total* across ranks, not the local
    shard length).  The op sequence is byte-for-byte the one
    :func:`layer_forward_cached` runs, so any strategy whose ``(k_all,
    v_all)`` values match the single cache's reconstructs its output
    bit-exactly.
    """
    if not layer.config.is_causal:
        raise ValueError("KV caching requires a causal layer")
    attention = layer.attention

    attn_input = x_new if layer.config.norm_style == "post" else layer.ln1(x_new)
    attended = _cached_attention(attention, attn_input, extend_kv, offset, True, workspace)
    return _layer_epilogue(layer, x_new, attended)


def layer_forward_cached_attention(
    layer: TransformerLayer,
    x_new: np.ndarray,
    attend,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """:func:`layer_forward_cached_kv` with a fully pluggable attention kernel.

    ``attend(q, k_new, v_new) -> (H, t, F_H)`` receives the new positions'
    per-head projections (each ``(H, t, F_H)``) and must return the
    *normalised* attended context for those positions — it owns cache
    extension, score scaling, causal masking and the softmax.  Used by the
    distributed-attention decode, where each rank attends only against its
    local K/V shard and reconstructs the exact output with a log-sum-exp
    combine (:mod:`repro.core.combine`); unlike the ``extend_kv`` hook, the
    kernel's float re-association makes the result *close to* — not
    bit-identical with — the single-device layer output.

    The projection prologue and residual/FFN epilogue are the same code
    paths :func:`layer_forward_cached_kv` runs, so any output difference is
    attributable to the attention kernel alone.
    """
    if not layer.config.is_causal:
        raise ValueError("KV caching requires a causal layer")
    attention = layer.attention

    attn_input = x_new if layer.config.norm_style == "post" else layer.ln1(x_new)
    q, k_new, v_new = _project_qkv(attention, attn_input, workspace)
    attended = merge_heads(attend(q, k_new, v_new))
    return _layer_epilogue(layer, x_new, attended)


def _layer_epilogue(layer: TransformerLayer, x_new: np.ndarray, attended: np.ndarray) -> np.ndarray:
    """Output projection, residuals, norms and FFN — shared by both hooks."""
    projected = layer.attention.output(attended)
    if layer.config.norm_style == "post":
        y = layer.ln1(projected + x_new)
        return layer.ln2(y + layer.ffn(y))
    y = x_new + projected
    return y + layer.ffn(layer.ln2(y))


# ---------------------------------------------------------------------------
# Position shards: split / view / merge one layer's cache across ranks
# ---------------------------------------------------------------------------


def shard_kv_cache(cache: LayerKVCache, parts) -> list[LayerKVCache]:
    """Split a populated cache into per-rank position shards (rows copied).

    ``parts`` are :class:`~repro.core.partition.Partition` spans over the
    cache *capacity* (they may extend past ``cache.length``; a shard owns
    its span's intersection with the cached prefix, which can be empty).
    Each shard is an independent :class:`LayerKVCache` pre-sized to its
    span, so subsequent appends for positions inside the span never
    reallocate.
    """
    shards: list[LayerKVCache] = []
    for part in parts:
        shard = LayerKVCache(capacity=part.length or None)
        lo, hi = max(part.start, 0), min(part.stop, cache.length)
        if hi > lo:
            shard.append(cache.k[:, lo:hi], cache.v[:, lo:hi])
        shards.append(shard)
    return shards


def shard_kv_views(
    shard: LayerKVCache, heads: int, head_dim: int, dtype
) -> tuple[np.ndarray, np.ndarray]:
    """The shard's ``(H, length, F_H)`` K/V views, zero-row arrays if empty.

    An empty shard (K > N leaves trailing ranks without positions; any rank
    before its span fills) has no backing buffers yet, so its ``k``/``v``
    properties are None — collectives need a real zero-length array of the
    right geometry instead.
    """
    if shard.length == 0 or shard.k is None:
        empty = np.empty((heads, 0, head_dim), dtype=dtype)
        return empty, empty
    return shard.k, shard.v


def merge_kv_shards(shards) -> tuple[np.ndarray, np.ndarray]:
    """Concatenate rank shards (in rank order) back into full ``(k, v)``.

    The exact inverse of :func:`shard_kv_cache` over contiguous, ordered
    spans: concatenation is a pure row copy, so the merged arrays are
    bit-identical to the unsharded cache's views for any dtype.
    """
    populated = [s for s in shards if s.length]
    if not populated:
        raise ValueError("cannot merge shards holding no cached positions")
    k = np.concatenate([s.k for s in populated], axis=1)
    v = np.concatenate([s.v for s in populated], axis=1)
    return k, v


class DecoderLayerKVCache:
    """Per-decoder-layer cache: self-attention K/V plus memoised cross K/V.

    The encoder memory is fixed for a whole translation, so its cross
    K/V projections are computed once on the first step and reused — the
    cached decode then never touches the memory again.
    """

    def __init__(self, capacity: int | None = None):
        self.self_cache = LayerKVCache(capacity=capacity)
        self.memory_k: np.ndarray | None = None
        self.memory_v: np.ndarray | None = None

    @property
    def length(self) -> int:
        return self.self_cache.length

    def truncate(self, length: int) -> None:
        """Roll back the self-attention cache to ``length`` positions.

        Truncating to zero also drops the memoised cross-attention K/V: a
        decode restarted from scratch belongs to a (potentially) different
        encoder memory, so keeping the projections would silently attend a
        stale source sentence.  Partial rollbacks keep them — the memory is
        fixed for the whole translation the decode is resuming.
        """
        self.self_cache.truncate(length)
        if length == 0:
            self.memory_k = None
            self.memory_v = None


def decoder_layer_forward_cached(
    layer,
    x_new: np.ndarray,
    memory: np.ndarray,
    cache: DecoderLayerKVCache,
    workspace: Workspace | None = None,
) -> np.ndarray:
    """One post-LN decoder layer (self-attn + cross-attn + FFN) over ``t`` new
    positions, reusing the cache.  Equivalent to
    ``layer.forward(full_x, memory)[-t:]`` (asserted by the tests).
    """
    self_attn = layer.self_attention
    cross_attn = layer.cross_attention
    offset = cache.self_cache.length

    attended = _cached_attention(
        self_attn, x_new, cache.self_cache.append, offset, True, workspace
    )
    y1 = layer.ln1(self_attn.output(attended) + x_new)

    if cache.memory_k is None:
        cache.memory_k = split_heads(cross_attn.key(memory), cross_attn.num_heads)
        cache.memory_v = split_heads(cross_attn.value(memory), cross_attn.num_heads)
    q = split_heads(cross_attn.query(y1), cross_attn.num_heads)
    scores = q @ cache.memory_k.transpose(0, 2, 1)
    np.divide(scores, math.sqrt(cross_attn.head_dim), out=scores)
    F.softmax(scores, axis=-1, out=scores)
    crossed = merge_heads(scores @ cache.memory_v)
    y2 = layer.ln2(cross_attn.output(crossed) + y1)
    return layer.ln3(y2 + layer.ffn(y2))
