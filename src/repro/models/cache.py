"""KV-cache incremental decoding for causal transformer layers.

The paper measures one full forward pass; serving autoregressive generation
naively re-runs that pass per token (O(T²) projections over a T-token
decode).  The standard fix is to cache each layer's K and V: a decode step
then projects only the *new* positions and attends them against the cached
keys/values — position-wise partitioning still applies to everything the
cache does not already cover.

Works for both normalisation placements; only causal layers may use a cache
(bidirectional layers would need future tokens that do not exist yet).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.orders import merge_heads, split_heads
from repro.models.layer import TransformerLayer
from repro.tensor import functional as F

__all__ = ["LayerKVCache", "KVCache", "layer_forward_cached"]


@dataclass
class LayerKVCache:
    """One layer's cached key/value tensors, ``(H, T, F_H)`` each."""

    k: np.ndarray | None = None
    v: np.ndarray | None = None

    @property
    def length(self) -> int:
        return 0 if self.k is None else self.k.shape[1]

    def append(self, k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Extend the cache; returns the full (cached + new) K and V."""
        if k_new.shape != v_new.shape:
            raise ValueError(f"K/V shapes disagree: {k_new.shape} vs {v_new.shape}")
        if self.k is None:
            self.k, self.v = k_new, v_new
        else:
            if k_new.shape[0] != self.k.shape[0] or k_new.shape[2] != self.k.shape[2]:
                raise ValueError(
                    f"cache geometry mismatch: cached {self.k.shape}, new {k_new.shape}"
                )
            self.k = np.concatenate([self.k, k_new], axis=1)
            self.v = np.concatenate([self.v, v_new], axis=1)
        return self.k, self.v


@dataclass
class KVCache:
    """Whole-model cache: one :class:`LayerKVCache` per transformer layer."""

    layers: list[LayerKVCache] = field(default_factory=list)

    @classmethod
    def empty(cls, num_layers: int) -> "KVCache":
        return cls(layers=[LayerKVCache() for _ in range(num_layers)])

    @property
    def length(self) -> int:
        """Positions already cached (uniform across layers by construction)."""
        return self.layers[0].length if self.layers else 0


def layer_forward_cached(
    layer: TransformerLayer, x_new: np.ndarray, cache: LayerKVCache
) -> np.ndarray:
    """One causal layer over the ``t`` newest positions, reusing the cache.

    ``x_new`` is ``(t, F)`` — the hidden states of positions
    ``[cache.length, cache.length + t)``.  Returns the layer output for
    exactly those positions and extends the cache in place.  Equivalent to
    ``layer.forward(full_x)[-t:]`` (asserted by the tests), at
    O(t·F²  + t·T·F) cost instead of O(T·F² + T²·F).
    """
    if not layer.config.is_causal:
        raise ValueError("KV caching requires a causal layer")
    attention = layer.attention
    offset = cache.length
    t = x_new.shape[0]

    attn_input = x_new if layer.config.norm_style == "post" else layer.ln1(x_new)
    q = split_heads(attention.query(attn_input), attention.num_heads)
    k_new = split_heads(attention.key(attn_input), attention.num_heads)
    v_new = split_heads(attention.value(attn_input), attention.num_heads)
    k_all, v_all = cache.append(k_new, v_new)

    scores = q @ k_all.transpose(0, 2, 1) / np.sqrt(attention.head_dim)
    mask = F.causal_mask(t, k_all.shape[1], offset=offset)
    scores = np.where(mask, -1e30, scores)
    attended = merge_heads(F.softmax(scores, axis=-1) @ v_all)
    projected = attention.output(attended)

    if layer.config.norm_style == "post":
        y = layer.ln1(projected + x_new)
        return layer.ln2(y + layer.ffn(y))
    y = x_new + projected
    return y + layer.ffn(layer.ln2(y))
