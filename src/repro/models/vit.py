"""Vision Transformer (ViT) with an image-classification head."""

from __future__ import annotations

import numpy as np

from repro.models.base import TransformerModel
from repro.models.config import TransformerConfig, vit_base_config
from repro.models.embeddings import PatchEmbeddings
from repro.tensor.layers import LayerNorm, Linear

__all__ = ["ViTModel"]


class ViTModel(TransformerModel):
    """ViT-B/16 style model: patch embedding → pre-LN encoder → CLS classifier.

    The paper's ViT workload is one 224×224 image → 197 tokens.  Images are
    ``(C, H, W)`` float arrays in any range (the patch projection is affine).
    """

    def __init__(
        self,
        config: TransformerConfig | None = None,
        num_classes: int = 1000,
        rng: np.random.Generator | None = None,
    ):
        config = config if config is not None else vit_base_config()
        if config.is_causal:
            raise ValueError("ViTModel is an encoder; config.is_causal must be False")
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(config, rng=rng)
        extras = config.extras
        self.patches = PatchEmbeddings(
            image_size=extras.get("image_size", 224),
            patch_size=extras.get("patch_size", 16),
            num_channels=extras.get("num_channels", 3),
            hidden_size=config.hidden_size,
            rng=rng,
        )
        self.ln_f = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.classifier = Linear(config.hidden_size, num_classes, rng=rng)
        self.num_classes = num_classes

    def preprocess(self, raw) -> np.ndarray:
        """``(C, H, W)`` image → ``(197, F)`` patch tokens with CLS prepended."""
        return self.patches(np.asarray(raw, dtype=np.float32))

    def final_norm(self, x: np.ndarray) -> np.ndarray:
        return self.ln_f(x)

    def postprocess(self, hidden: np.ndarray) -> np.ndarray:
        """CLS-token hidden state → class logits ``(num_classes,)``."""
        return self.classifier(hidden[0])

    def classify(self, image: np.ndarray) -> int:
        return int(np.argmax(self.forward(image)))

    def preprocess_flops(self, n: int) -> int:
        """Patch projection: num_patches × (C·P²) × F."""
        return self.patches.num_patches * self.patches.projection.in_features * (
            self.config.hidden_size
        )

    def postprocess_flops(self, n: int) -> int:
        """Classifier on the CLS row: F × classes."""
        return self.config.hidden_size * self.num_classes
