"""GPT-2-style causal decoder with a tied language-model head."""

from __future__ import annotations

import numpy as np

from repro.models.base import TransformerModel
from repro.models.config import TransformerConfig, gpt2_config
from repro.models.embeddings import TextEmbeddings
from repro.models.tokenizer import SimpleTokenizer
from repro.tensor.layers import LayerNorm

__all__ = ["GPT2Model"]


class GPT2Model(TransformerModel):
    """GPT-2: pre-LN causal transformer, final layer norm, tied LM head.

    The paper deploys GPT-2 for text classification with a 200-word input —
    a single forward pass over the prompt, which is what the distributed
    systems execute.  :meth:`generate` additionally provides greedy
    autoregressive decoding as an example-level extension.
    """

    def __init__(
        self,
        config: TransformerConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        config = config if config is not None else gpt2_config()
        if not config.is_causal or config.norm_style != "pre":
            raise ValueError("GPT2Model requires a causal, pre-LN configuration")
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(config, rng=rng)
        self.embeddings = TextEmbeddings(
            vocab_size=config.vocab_size,
            hidden_size=config.hidden_size,
            max_positions=config.max_positions,
            type_vocab_size=0,
            use_layer_norm=False,  # GPT-2 does not normalise embeddings
            rng=rng,
        )
        self.ln_f = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.tokenizer = SimpleTokenizer(config.vocab_size, add_special_tokens=False)

    def preprocess(self, raw) -> np.ndarray:
        if isinstance(raw, str):
            raw = self.tokenizer.encode(raw, max_length=self.config.max_positions)
        return self.embeddings(np.asarray(raw))

    def final_norm(self, x: np.ndarray) -> np.ndarray:
        return self.ln_f(x)

    def postprocess(self, hidden: np.ndarray) -> np.ndarray:
        """Last-position hidden state → next-token logits ``(vocab,)``.

        Tied to the input embedding (GPT-2's weight tying).  Classification
        and greedy decoding both read only the final position, so the
        terminal device computes one ``F × vocab`` product rather than N.
        Use :meth:`lm_logits` for the full ``(N, vocab)`` matrix.
        """
        return hidden[-1] @ self.embeddings.word.weight.data.T

    def lm_logits(self, hidden: np.ndarray) -> np.ndarray:
        """Full-sequence language-model logits ``(N, vocab)``."""
        return hidden @ self.embeddings.word.weight.data.T

    def next_token(self, token_ids: np.ndarray) -> int:
        """Greedy next-token prediction from the last position."""
        logits = self.forward(np.asarray(token_ids))
        return int(np.argmax(logits))

    def postprocess_flops(self, n: int) -> int:
        """Tied LM head on the last position: F × vocab."""
        return self.config.hidden_size * self.config.vocab_size

    def logits_cached(
        self,
        new_ids,
        offset: int,
        caches,
        workspace=None,
        all_positions: bool = False,
    ) -> np.ndarray:
        """One KV-cached forward over ``new_ids`` at ``offset``, returning
        LM-head logits — the exact op sequence of :meth:`generate_cached`'s
        inner step, against caller-owned per-layer caches (``caches`` is a
        sequence of :class:`~repro.models.cache.LayerKVCache`, e.g. an
        engine slot's).

        By default only the last position's logits come back (``(vocab,)``,
        the greedy-decode head).  ``all_positions=True`` returns the full
        ``(t, vocab)`` matrix — the multi-position *verify* forward of
        speculative decoding, which needs the target's argmax at every
        drafted position from one batched pass.
        """
        from repro.models.cache import layer_forward_cached

        positions = np.arange(offset, offset + len(new_ids))
        x = self.embeddings.word(np.asarray(new_ids, dtype=np.int64))
        x = x + self.embeddings.position(positions)
        for layer, layer_cache in zip(self.layers, caches):
            x = layer_forward_cached(layer, x, layer_cache, workspace=workspace)
        hidden = self.ln_f(x) if all_positions else self.ln_f(x[-1])
        return hidden @ self.embeddings.word.weight.data.T

    def truncated_draft(self, num_layers: int = 1) -> "GPT2Model":
        """A shallower draft model for speculative decoding: shares this
        model's embeddings, first ``num_layers`` transformer layers and
        final norm *by reference* — no extra weights, same tokenizer and
        vocab, so its greedy proposals track the full model closely while
        each draft forward runs ``num_layers / L`` of the layer stack."""
        from repro.tensor.module import ModuleList

        if not 1 <= num_layers < self.num_layers:
            raise ValueError(
                f"draft depth must be in [1, {self.num_layers - 1}], got {num_layers}"
            )
        config = self.config.scaled(
            num_layers=num_layers, name=f"{self.config.name}-draft{num_layers}"
        )
        draft = GPT2Model(config, rng=np.random.default_rng(0))
        draft.embeddings = self.embeddings
        draft.layers = ModuleList(list(self.layers)[:num_layers])
        draft.ln_f = self.ln_f
        draft.tokenizer = self.tokenizer
        return draft

    def generate_cached(self, prompt_ids: np.ndarray, max_new_tokens: int = 8) -> np.ndarray:
        """Greedy decoding with a KV cache: prefill once, then O(1) steps.

        Emits exactly the same tokens as :meth:`generate` (asserted by the
        tests) while projecting each position only once per layer.
        """
        from repro.models.cache import KVCache
        from repro.tensor.workspace import Workspace

        ids = list(np.asarray(prompt_ids))
        # Final sequence length is known up front → size every layer's cache
        # exactly once; one workspace backs the scratch of all layers/steps.
        capacity = min(len(ids) + max_new_tokens, self.config.max_positions)
        cache = KVCache.empty(self.num_layers, capacity=capacity)
        workspace = Workspace()

        def step(new_ids: list[int], offset: int) -> int:
            logits = self.logits_cached(new_ids, offset, cache.layers, workspace=workspace)
            return int(np.argmax(logits))

        next_id = step(ids, 0)  # prefill over the whole prompt
        for _ in range(max_new_tokens):
            if len(ids) >= self.config.max_positions:
                break
            ids.append(next_id)
            if len(ids) >= self.config.max_positions:
                break
            next_id = step([ids[-1]], len(ids) - 1)
        return np.asarray(ids, dtype=np.int64)

    def generate(self, prompt_ids: np.ndarray, max_new_tokens: int = 8) -> np.ndarray:
        """Greedy decoding (full re-forward per step; no KV cache).

        Each step is exactly the single-forward workload the paper measures,
        so distributed systems can serve generation by re-running Algorithm 2
        per emitted token.
        """
        ids = list(np.asarray(prompt_ids))
        for _ in range(max_new_tokens):
            if len(ids) >= self.config.max_positions:
                break
            ids.append(self.next_token(np.asarray(ids, dtype=np.int64)))
        return np.asarray(ids, dtype=np.int64)
