"""Full (unpartitioned) multi-head self-attention — Eq. (1)–(2) of the paper."""

from __future__ import annotations

import numpy as np

from repro.core.orders import AttentionParams, attention_full
from repro.tensor.layers import Linear
from repro.tensor.module import Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention with output projection.

    ``MultiHead(x) = Concat(A_1(x), ..., A_H(x)) · W_O`` where each head is
    ``Attn(x W_Q^i, x W_K^i, x W_V^i)``.  The projection weights are stored
    as single ``(F, H·F_H)`` matrices with heads contiguous along columns,
    which is both the HuggingFace layout and what
    :class:`repro.core.orders.AttentionParams` expects — so the partitioned
    executors can reuse these exact parameters with no copying.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
        head_dim: int | None = None,
    ):
        """``head_dim`` defaults to ``hidden_size // num_heads`` (the standard
        ``H·F_H = F`` setting); passing it explicitly supports head-pruned
        models where ``H·F_H < F`` (the projection width shrinks while the
        residual width stays F)."""
        super().__init__()
        if head_dim is None:
            if hidden_size % num_heads != 0:
                raise ValueError(
                    f"hidden_size={hidden_size} not divisible by num_heads={num_heads}"
                )
            head_dim = hidden_size // num_heads
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = head_dim
        proj_width = num_heads * head_dim
        rng = rng if rng is not None else np.random.default_rng(0)
        self.query = Linear(hidden_size, proj_width, rng=rng, bias=bias)
        self.key = Linear(hidden_size, proj_width, rng=rng, bias=bias)
        self.value = Linear(hidden_size, proj_width, rng=rng, bias=bias)
        self.output = Linear(proj_width, hidden_size, rng=rng, bias=bias)

    def attention_params(self) -> AttentionParams:
        """Zero-copy view of the Q/K/V projections for the order executors."""
        return AttentionParams(
            wq=self.query.weight.data,
            wk=self.key.weight.data,
            wv=self.value.weight.data,
            num_heads=self.num_heads,
            bq=self.query.bias.data if self.query.bias else None,
            bk=self.key.bias.data if self.key.bias else None,
            bv=self.value.bias.data if self.value.bias else None,
        )

    def forward(self, x: np.ndarray, causal: bool = False) -> np.ndarray:
        """Full-sequence attention: ``(N, F) → (N, F)``."""
        attended = attention_full(x, self.attention_params(), causal=causal)
        return self.output(attended)

    def __repr__(self) -> str:
        return (
            f"MultiHeadSelfAttention(F={self.hidden_size}, H={self.num_heads}, "
            f"F_H={self.head_dim})"
        )
