"""Full (unpartitioned) multi-head self-attention — Eq. (1)–(2) of the paper."""

from __future__ import annotations

import numpy as np

from repro.core.orders import AttentionParams, attention_full
from repro.tensor.layers import Linear
from repro.tensor.module import Module

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Standard multi-head self-attention with output projection.

    ``MultiHead(x) = Concat(A_1(x), ..., A_H(x)) · W_O`` where each head is
    ``Attn(x W_Q^i, x W_K^i, x W_V^i)``.  The projection weights are stored
    as single ``(F, H·F_H)`` matrices with heads contiguous along columns,
    which is both the HuggingFace layout and what
    :class:`repro.core.orders.AttentionParams` expects — so the partitioned
    executors can reuse these exact parameters with no copying.
    """

    def __init__(
        self,
        hidden_size: int,
        num_heads: int,
        rng: np.random.Generator | None = None,
        bias: bool = True,
        head_dim: int | None = None,
    ):
        """``head_dim`` defaults to ``hidden_size // num_heads`` (the standard
        ``H·F_H = F`` setting); passing it explicitly supports head-pruned
        models where ``H·F_H < F`` (the projection width shrinks while the
        residual width stays F)."""
        super().__init__()
        if head_dim is None:
            if hidden_size % num_heads != 0:
                raise ValueError(
                    f"hidden_size={hidden_size} not divisible by num_heads={num_heads}"
                )
            head_dim = hidden_size // num_heads
        self.hidden_size = hidden_size
        self.num_heads = num_heads
        self.head_dim = head_dim
        proj_width = num_heads * head_dim
        rng = rng if rng is not None else np.random.default_rng(0)
        self.query = Linear(hidden_size, proj_width, rng=rng, bias=bias)
        self.key = Linear(hidden_size, proj_width, rng=rng, bias=bias)
        self.value = Linear(hidden_size, proj_width, rng=rng, bias=bias)
        self.output = Linear(proj_width, hidden_size, rng=rng, bias=bias)
        self._qkv_cache: tuple | None = None
        self._fuse_qkv_storage()

    def _fuse_qkv_storage(self) -> None:
        """Re-home Q/K/V weights into one ``(F, 3·H·F_H)`` buffer.

        The three projection parameters become column views of a single
        fused matrix, so a decode step computes Q, K and V with *one* GEMM
        (``x @ W_QKV``) instead of three skinny ones, while every existing
        consumer (``attention_params``, tensor-parallel sharding, pruning)
        keeps seeing three ``(F, H·F_H)`` arrays.  In-place weight edits flow
        through the views; rebinding ``weight.data`` wholesale is detected by
        identity in :meth:`_fused_qkv` and triggers a re-fuse.
        """
        proj_width = self.num_heads * self.head_dim
        fused_w = np.concatenate(
            [self.query.weight.data, self.key.weight.data, self.value.weight.data], axis=1
        )
        self.query.weight.data = fused_w[:, :proj_width]
        self.key.weight.data = fused_w[:, proj_width : 2 * proj_width]
        self.value.weight.data = fused_w[:, 2 * proj_width :]
        fused_b = None
        if self.query.bias is not None:
            fused_b = np.concatenate(
                [self.query.bias.data, self.key.bias.data, self.value.bias.data]
            )
            self.query.bias.data = fused_b[:proj_width]
            self.key.bias.data = fused_b[proj_width : 2 * proj_width]
            self.value.bias.data = fused_b[2 * proj_width :]
        self._qkv_cache = (
            self.query.weight.data,
            self.key.weight.data,
            self.value.weight.data,
            fused_w,
            fused_b,
        )

    def _fused_qkv(self) -> tuple[np.ndarray, np.ndarray | None]:
        """The fused ``(F, 3·H·F_H)`` weight (and bias), re-fused if stale.

        Staleness means some consumer rebound ``weight.data`` to a fresh
        array (``Parameter.copy_``, checkpoint loading, tests).  Re-fusing
        also re-homes the parameters as views again, so later in-place edits
        keep the fused buffer coherent.
        """
        cached = self._qkv_cache
        if (
            cached is not None
            and cached[0] is self.query.weight.data
            and cached[1] is self.key.weight.data
            and cached[2] is self.value.weight.data
        ):
            return cached[3], cached[4]
        self._fuse_qkv_storage()
        return self._qkv_cache[3], self._qkv_cache[4]

    def qkv_projection(self, x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Fused ``x @ W_QKV + b_QKV`` → ``(N, 3·H·F_H)``, Q/K/V side by side.

        Column blocks ``[0:W)``, ``[W:2W)``, ``[2W:3W)`` (``W = H·F_H``) are
        exactly ``query(x)``, ``key(x)``, ``value(x)`` — one fat GEMM instead
        of three (identical FLOPs, one output allocation, better BLAS
        efficiency at decode-step widths).
        """
        w, b = self._fused_qkv()
        out = np.matmul(x, w, out=out) if out is not None else x @ w
        if b is not None:
            np.add(out, b, out=out)
        return out

    def attention_params(self) -> AttentionParams:
        """Zero-copy view of the Q/K/V projections for the order executors."""
        return AttentionParams(
            wq=self.query.weight.data,
            wk=self.key.weight.data,
            wv=self.value.weight.data,
            num_heads=self.num_heads,
            bq=self.query.bias.data if self.query.bias else None,
            bk=self.key.bias.data if self.key.bias else None,
            bv=self.value.bias.data if self.value.bias else None,
        )

    def forward(self, x: np.ndarray, causal: bool = False) -> np.ndarray:
        """Full-sequence attention: ``(N, F) → (N, F)``."""
        attended = attention_full(x, self.attention_params(), causal=causal)
        return self.output(attended)

    def __repr__(self) -> str:
        return (
            f"MultiHeadSelfAttention(F={self.hidden_size}, H={self.num_heads}, "
            f"F_H={self.head_dim})"
        )
