"""Input embedding layers: token/position/segment lookups and ViT patches.

These implement the "pre-processing" stage of Fig. 3 — performed on the
terminal device before input features are broadcast to the computing
devices.
"""

from __future__ import annotations

import numpy as np

from repro.tensor import init
from repro.tensor.layers import Embedding, LayerNorm, Linear
from repro.tensor.module import Module, Parameter

__all__ = ["TextEmbeddings", "PatchEmbeddings"]


class TextEmbeddings(Module):
    """BERT/GPT-2 style embeddings: token + learned position (+ segment).

    ``use_layer_norm`` matches BERT (GPT-2 does not normalise embeddings).
    """

    def __init__(
        self,
        vocab_size: int,
        hidden_size: int,
        max_positions: int,
        type_vocab_size: int = 0,
        use_layer_norm: bool = True,
        layer_norm_eps: float = 1e-12,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.max_positions = max_positions
        self.word = Embedding(vocab_size, hidden_size, rng=rng)
        self.position = Embedding(max_positions, hidden_size, rng=rng)
        self.token_type = (
            Embedding(type_vocab_size, hidden_size, rng=rng) if type_vocab_size else None
        )
        self.layer_norm = LayerNorm(hidden_size, eps=layer_norm_eps) if use_layer_norm else None

    def forward(
        self, token_ids: np.ndarray, token_type_ids: np.ndarray | None = None
    ) -> np.ndarray:
        token_ids = np.asarray(token_ids)
        n = token_ids.shape[0]
        if n > self.max_positions:
            raise ValueError(f"sequence length {n} exceeds max_positions={self.max_positions}")
        x = self.word(token_ids) + self.position(np.arange(n))
        if self.token_type is not None:
            if token_type_ids is None:
                token_type_ids = np.zeros(n, dtype=np.int64)
            x = x + self.token_type(np.asarray(token_type_ids))
        if self.layer_norm is not None:
            x = self.layer_norm(x)
        return x


class PatchEmbeddings(Module):
    """ViT patch embedding: split the image into P×P patches, project, add CLS.

    Implemented as reshape + matmul (equivalent to the stride-P convolution
    in the reference implementation, with identical FLOPs).
    """

    def __init__(
        self,
        image_size: int,
        patch_size: int,
        num_channels: int,
        hidden_size: int,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        if image_size % patch_size != 0:
            raise ValueError(
                f"image_size={image_size} not divisible by patch_size={patch_size}"
            )
        rng = rng if rng is not None else np.random.default_rng(0)
        self.image_size = image_size
        self.patch_size = patch_size
        self.num_channels = num_channels
        self.grid = image_size // patch_size
        self.num_patches = self.grid * self.grid
        patch_dim = num_channels * patch_size * patch_size
        self.projection = Linear(patch_dim, hidden_size, rng=rng)
        self.cls_token = Parameter(init.normal(rng, (1, hidden_size)))
        self.position = Embedding(self.num_patches + 1, hidden_size, rng=rng)

    @property
    def sequence_length(self) -> int:
        """Token count seen by the transformer: patches + CLS (197 for ViT-B/16)."""
        return self.num_patches + 1

    def patchify(self, image: np.ndarray) -> np.ndarray:
        """``(C, H, W)`` image → ``(num_patches, C·P·P)`` rows (row-major grid)."""
        c, h, w = image.shape
        if (c, h, w) != (self.num_channels, self.image_size, self.image_size):
            raise ValueError(
                f"expected image (C={self.num_channels}, {self.image_size}, "
                f"{self.image_size}), got {image.shape}"
            )
        p = self.patch_size
        patches = image.reshape(c, self.grid, p, self.grid, p)
        patches = patches.transpose(1, 3, 0, 2, 4)  # (gh, gw, c, p, p)
        return patches.reshape(self.num_patches, c * p * p)

    def forward(self, image: np.ndarray) -> np.ndarray:
        tokens = self.projection(self.patchify(image))
        x = np.concatenate([self.cls_token.data, tokens], axis=0)
        return x + self.position(np.arange(self.sequence_length))
