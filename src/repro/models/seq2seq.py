"""Encoder–decoder transformer (the original seq2seq architecture) with
position-wise partitioned decoding.

The paper's evaluation covers encoder-only (BERT/ViT) and decoder-only
(GPT-2) stacks; the original transformer's third block type — the decoder
layer with *cross-attention* — partitions by position just as well:

- self-attention partitions exactly as in Algorithm 1 (causal);
- cross-attention queries come from the decoder partition while K/V come
  from the encoder memory, so the computation-order analysis of Section IV
  applies with N re-interpreted as the *memory length* — including the case
  ``P > N_mem`` that self-attention cannot produce (handled by
  :func:`repro.core.complexity.select_cross_order`);
- everything else is position-wise.

:class:`PartitionedDecoderLayerExecutor` is the Algorithm-1 analogue for
decoder layers; :class:`Seq2SeqTransformer` is a complete runnable model
(random weights; shapes follow the original transformer base).
"""

from __future__ import annotations

import numpy as np

from repro.core import complexity
from repro.core.complexity import AttentionOrder
from repro.core.orders import attention_partition, cross_attention_partition
from repro.core.partition import Partition
from repro.models.attention import MultiHeadSelfAttention
from repro.models.config import TransformerConfig
from repro.models.embeddings import TextEmbeddings
from repro.models.layer import FeedForward, TransformerLayer
from repro.models.tokenizer import SimpleTokenizer
from repro.tensor.layers import LayerNorm, Linear
from repro.tensor.module import Module, ModuleList

__all__ = ["DecoderLayer", "PartitionedDecoderLayerExecutor", "Seq2SeqTransformer"]


class DecoderLayer(Module):
    """Original-transformer decoder block: self-attn, cross-attn, FFN (post-LN)."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)
        self.self_attention = MultiHeadSelfAttention(
            config.hidden_size, config.num_heads, rng=rng, bias=config.attention_bias
        )
        self.cross_attention = MultiHeadSelfAttention(
            config.hidden_size, config.num_heads, rng=rng, bias=config.attention_bias
        )
        self.ffn = FeedForward(config.hidden_size, config.ffn_dim, config.activation, rng=rng)
        self.ln1 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.ln2 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.ln3 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)

    def forward(self, x: np.ndarray, memory: np.ndarray) -> np.ndarray:
        """Full-sequence decoder layer: ``(N_dec, F), (N_enc, F) → (N_dec, F)``."""
        executor = PartitionedDecoderLayerExecutor(self)
        return executor.forward_partition(x, memory, Partition(0, x.shape[0]))


class PartitionedDecoderLayerExecutor:
    """Algorithm 1 extended to decoder layers (self + cross attention)."""

    def __init__(self, layer: DecoderLayer):
        self.layer = layer
        self.config = layer.config

    def select_orders(self, n_dec: int, n_mem: int, p: int) -> tuple[AttentionOrder, AttentionOrder]:
        """(self-attention order, cross-attention order) for this instance."""
        f = self.config.hidden_size
        fh = self.layer.self_attention.head_dim
        self_order = complexity.select_order(n_dec, min(p, n_dec), f, fh)
        cross_order = complexity.select_cross_order(n_mem, p, f, fh)
        return self_order, cross_order

    def forward_partition(
        self,
        x: np.ndarray,
        memory: np.ndarray,
        partition: Partition,
        self_order: AttentionOrder | None = None,
        cross_order: AttentionOrder | None = None,
    ) -> np.ndarray:
        """Decoder-layer output rows ``partition`` from full inputs."""
        if partition.stop > x.shape[0]:
            raise ValueError(f"partition {partition} out of range for N_dec={x.shape[0]}")
        if partition.is_empty:
            return np.zeros((0, self.config.hidden_size), dtype=x.dtype)
        layer = self.layer
        if self_order is None or cross_order is None:
            auto_self, auto_cross = self.select_orders(
                x.shape[0], memory.shape[0], partition.length
            )
            self_order = self_order if self_order is not None else auto_self
            cross_order = cross_order if cross_order is not None else auto_cross

        xp = x[partition.start : partition.stop]
        attended = attention_partition(
            x, partition.start, partition.stop,
            layer.self_attention.attention_params(), self_order, causal=True,
        )
        y1 = layer.ln1(layer.self_attention.output(attended) + xp)

        # cross-attention queries are exactly this partition's rows
        crossed = cross_attention_partition(
            y1, memory, 0, y1.shape[0],
            layer.cross_attention.attention_params(), cross_order,
        )
        y2 = layer.ln2(layer.cross_attention.output(crossed) + y1)
        return layer.ln3(y2 + layer.ffn(y2))

    def partition_flops(self, n_dec: int, n_mem: int, p: int) -> int:
        """Matmul FLOPs for one partitioned decoder layer."""
        cfg = self.config
        f, fh = cfg.hidden_size, self.layer.self_attention.head_dim
        h = self.layer.self_attention.num_heads
        self_order, cross_order = self.select_orders(n_dec, n_mem, p)
        self_cost = h * complexity.attention_order_cost(
            self_order, n_dec, min(p, n_dec), f, fh
        ).matmul
        cross_cost = h * complexity.cross_attention_order_cost(
            cross_order, n_mem, p, f, fh
        ).matmul
        projections = 2 * p * (h * fh) * f  # both output projections
        return self_cost + cross_cost + projections + complexity.ffn_flops(p, f, cfg.ffn_dim)


class Seq2SeqTransformer(Module):
    """A complete encoder–decoder model with greedy translation."""

    def __init__(
        self,
        config: TransformerConfig | None = None,
        rng: np.random.Generator | None = None,
    ):
        config = config if config is not None else TransformerConfig(
            hidden_size=512, num_heads=8, num_layers=6, ffn_dim=2048,
            vocab_size=32000, max_positions=512, activation="relu",
            norm_style="post", type_vocab_size=0, name="transformer-base",
        )
        if config.norm_style != "post":
            raise ValueError("this seq2seq implementation is post-LN (original transformer)")
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)
        encoder_config = config.scaled(is_causal=False)
        self.src_embeddings = TextEmbeddings(
            config.vocab_size, config.hidden_size, config.max_positions,
            type_vocab_size=0, use_layer_norm=True,
            layer_norm_eps=config.layer_norm_eps, rng=rng,
        )
        self.tgt_embeddings = TextEmbeddings(
            config.vocab_size, config.hidden_size, config.max_positions,
            type_vocab_size=0, use_layer_norm=True,
            layer_norm_eps=config.layer_norm_eps, rng=rng,
        )
        self.encoder = ModuleList(
            [TransformerLayer(encoder_config, rng=rng) for _ in range(config.num_layers)]
        )
        self.decoder = ModuleList(
            [DecoderLayer(config, rng=rng) for _ in range(config.num_layers)]
        )
        self.generator = Linear(config.hidden_size, config.vocab_size, rng=rng)
        self.tokenizer = SimpleTokenizer(config.vocab_size, add_special_tokens=False)

    def encode(self, src_ids: np.ndarray) -> np.ndarray:
        """Source ids → encoder memory ``(N_enc, F)``."""
        x = self.src_embeddings(np.asarray(src_ids))
        for layer in self.encoder:
            x = layer(x)
        return x

    def decode(self, tgt_ids: np.ndarray, memory: np.ndarray) -> np.ndarray:
        """Target prefix ids + memory → decoder hidden states ``(N_dec, F)``."""
        x = self.tgt_embeddings(np.asarray(tgt_ids))
        for layer in self.decoder:
            x = layer(x, memory)
        return x

    def forward(self, raw) -> np.ndarray:
        """``(src_ids, tgt_ids)`` → next-token logits ``(vocab,)``."""
        src_ids, tgt_ids = raw
        memory = self.encode(src_ids)
        hidden = self.decode(tgt_ids, memory)
        return self.generator(hidden[-1])

    def greedy_translate(
        self, src_ids: np.ndarray, bos: int = 1, eos: int = 2, max_length: int = 16
    ) -> np.ndarray:
        """Greedy decoding from BOS until EOS or ``max_length`` tokens."""
        memory = self.encode(src_ids)
        ids = [bos]
        for _ in range(max_length - 1):
            hidden = self.decode(np.asarray(ids, dtype=np.int64), memory)
            next_id = int(np.argmax(self.generator(hidden[-1])))
            ids.append(next_id)
            if next_id == eos:
                break
        return np.asarray(ids, dtype=np.int64)

    def greedy_translate_cached(
        self, src_ids: np.ndarray, bos: int = 1, eos: int = 2, max_length: int = 16
    ) -> np.ndarray:
        """Greedy decoding with per-layer KV caches: each target position is
        embedded and projected exactly once, and the encoder memory's cross
        K/V are computed once per layer.  Emits the same tokens as
        :meth:`greedy_translate` (asserted by the tests).
        """
        from repro.models.cache import DecoderLayerKVCache, decoder_layer_forward_cached
        from repro.tensor.workspace import Workspace

        memory = self.encode(src_ids)
        caches = [DecoderLayerKVCache(capacity=max_length) for _ in self.decoder]
        workspace = Workspace()
        emb = self.tgt_embeddings

        def step(token_id: int, position: int) -> int:
            x = emb.word(np.asarray([token_id], dtype=np.int64))
            x = x + emb.position(np.asarray([position]))
            if emb.layer_norm is not None:
                x = emb.layer_norm(x)
            for layer, cache in zip(self.decoder, caches):
                x = decoder_layer_forward_cached(layer, x, memory, cache, workspace=workspace)
            return int(np.argmax(self.generator(x[-1])))

        ids = [bos]
        for _ in range(max_length - 1):
            next_id = step(ids[-1], len(ids) - 1)
            ids.append(next_id)
            if next_id == eos:
                break
        return np.asarray(ids, dtype=np.int64)
