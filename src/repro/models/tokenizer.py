"""A deterministic hash-based word tokenizer.

The paper feeds "a random string with 200 words" to BERT/GPT-2 — latency
depends only on token count, not token identity.  This tokenizer gives the
examples and benchmarks a realistic text → ids path without shipping a
30k-entry WordPiece vocabulary: words map to stable ids via a seeded hash,
with the usual special tokens reserved at the bottom of the id space.
"""

from __future__ import annotations

import hashlib
import re

import numpy as np

__all__ = ["SimpleTokenizer"]

_WORD_RE = re.compile(r"[a-z0-9']+|[^\sa-z0-9']")


class SimpleTokenizer:
    """Lower-cases, splits words/punctuation, hashes into the vocab range."""

    PAD = 0
    UNK = 1
    CLS = 2
    SEP = 3
    MASK = 4
    NUM_SPECIAL = 5

    def __init__(self, vocab_size: int, add_special_tokens: bool = True, seed: int = 17):
        if vocab_size <= self.NUM_SPECIAL:
            raise ValueError(f"vocab_size must exceed {self.NUM_SPECIAL}, got {vocab_size}")
        self.vocab_size = vocab_size
        self.add_special_tokens = add_special_tokens
        self.seed = seed

    def _word_id(self, word: str) -> int:
        digest = hashlib.blake2s(
            word.encode("utf-8"), salt=self.seed.to_bytes(8, "little")
        ).digest()
        span = self.vocab_size - self.NUM_SPECIAL
        return self.NUM_SPECIAL + int.from_bytes(digest[:8], "little") % span

    def tokenize(self, text: str) -> list[str]:
        return _WORD_RE.findall(text.lower())

    def encode(self, text: str, max_length: int | None = None) -> np.ndarray:
        """Text → int64 id array, optionally CLS/SEP-wrapped and truncated."""
        ids = [self._word_id(w) for w in self.tokenize(text)]
        if self.add_special_tokens:
            ids = [self.CLS] + ids + [self.SEP]
        if max_length is not None:
            if max_length < (2 if self.add_special_tokens else 1):
                raise ValueError(f"max_length={max_length} too small")
            if len(ids) > max_length:
                ids = ids[: max_length - 1] + ([self.SEP] if self.add_special_tokens else ids[-1:])
        return np.asarray(ids, dtype=np.int64)

    def random_words(self, count: int, rng: np.random.Generator | None = None) -> str:
        """Generate the paper's synthetic workload: a random ``count``-word string."""
        rng = rng if rng is not None else np.random.default_rng(0)
        lengths = rng.integers(2, 10, size=count)
        letters = "abcdefghijklmnopqrstuvwxyz"
        words = [
            "".join(letters[i] for i in rng.integers(0, 26, size=length))
            for length in lengths
        ]
        return " ".join(words)
