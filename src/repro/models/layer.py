"""The transformer layer (encoder/decoder block) — paper Fig. 1.

Supports both normalisation placements used by the evaluation models:

- ``post`` (BERT, the original transformer, and the paper's Fig. 1):
  ``y = LN(x + MHA(x)); out = LN(y + FFN(y))``
- ``pre`` (GPT-2, ViT):
  ``y = x + MHA(LN(x)); out = y + FFN(LN(y))``

Both are partitionable by position: layer norm and the FFN are position-wise,
and the attention input (``x`` or ``LN(x)``) is shared by all devices after
the All-Gather.
"""

from __future__ import annotations

import numpy as np

from repro.models.attention import MultiHeadSelfAttention
from repro.models.config import TransformerConfig
from repro.tensor import functional as F
from repro.tensor.layers import LayerNorm, Linear
from repro.tensor.module import Module

__all__ = ["FeedForward", "TransformerLayer"]


class FeedForward(Module):
    """Position-wise two-layer FFN: ``Act(x W_1 + b_1) W_2 + b_2``."""

    def __init__(
        self,
        hidden_size: int,
        ffn_dim: int,
        activation: str = "gelu",
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.fc1 = Linear(hidden_size, ffn_dim, rng=rng)
        self.fc2 = Linear(ffn_dim, hidden_size, rng=rng)
        self.activation = activation
        self._act = F.ACTIVATIONS[activation]

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.fc2(self._act(self.fc1(x)))

    def flops(self, n_rows: int) -> int:
        return self.fc1.flops(n_rows) + self.fc2.flops(n_rows)


class TransformerLayer(Module):
    """One full transformer layer; the unit Algorithm 1 partitions."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)
        self.attention = MultiHeadSelfAttention(
            config.hidden_size, config.num_heads, rng=rng, bias=config.attention_bias
        )
        self.ffn = FeedForward(config.hidden_size, config.ffn_dim, config.activation, rng=rng)
        self.ln1 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)
        self.ln2 = LayerNorm(config.hidden_size, eps=config.layer_norm_eps)

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Full-sequence forward pass ``(N, F) → (N, F)``."""
        causal = self.config.is_causal
        if self.config.norm_style == "post":
            attended = self.attention(x, causal=causal)
            y = self.ln1(attended + x)
            return self.ln2(y + self.ffn(y))
        normed = self.ln1(x)
        y = x + self.attention(normed, causal=causal)
        return y + self.ffn(self.ln2(y))

    def __repr__(self) -> str:
        return (
            f"TransformerLayer(F={self.config.hidden_size}, H={self.config.num_heads}, "
            f"ffn={self.config.ffn_dim}, norm={self.config.norm_style})"
        )
