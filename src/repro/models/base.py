"""The common model interface consumed by every inference system.

Fig. 3 of the paper splits a model into three stages:

1. **pre-processing** on the terminal device (embeddings / patching),
2. a stack of **transformer layers** distributed across computing devices,
3. **post-processing** on the terminal device (pooling / classification /
   LM head).

:class:`TransformerModel` encodes exactly that decomposition so that the
systems in :mod:`repro.systems` (single-device, Voltage, tensor parallelism,
pipeline parallelism) can run *any* of the three evaluation models through
one generic code path.
"""

from __future__ import annotations

import numpy as np

from repro.models.config import TransformerConfig
from repro.models.layer import TransformerLayer
from repro.tensor.module import Module, ModuleList

__all__ = ["TransformerModel"]


class TransformerModel(Module):
    """Base class: embeddings → transformer stack → task head."""

    def __init__(self, config: TransformerConfig, rng: np.random.Generator | None = None):
        super().__init__()
        self.config = config
        rng = rng if rng is not None else np.random.default_rng(0)
        self.layers = ModuleList(
            [TransformerLayer(config, rng=rng) for _ in range(config.num_layers)]
        )

    # -- stages -------------------------------------------------------------

    def preprocess(self, raw) -> np.ndarray:
        """Raw task input → ``(N, F)`` transformer input features (Fig. 3 stage 1)."""
        raise NotImplementedError

    def encode(self, x: np.ndarray) -> np.ndarray:
        """Run the full transformer stack sequentially (stage 2, single device)."""
        for layer in self.layers:
            x = layer(x)
        return self.final_norm(x)

    def final_norm(self, x: np.ndarray) -> np.ndarray:
        """Hook for the trailing layer norm of pre-LN models (GPT-2/ViT)."""
        return x

    def postprocess(self, hidden: np.ndarray) -> np.ndarray:
        """``(N, F)`` final hidden states → task output (stage 3)."""
        raise NotImplementedError

    def forward(self, raw) -> np.ndarray:
        """End-to-end single-device inference."""
        return self.postprocess(self.encode(self.preprocess(raw)))

    # -- metadata used by the systems/simulator ------------------------------

    @property
    def num_layers(self) -> int:
        return len(self.layers)

    def sequence_length(self, raw) -> int:
        """Token count a raw input will occupy (drives partition planning)."""
        return self.preprocess(raw).shape[0]

    def preprocess_flops(self, n: int) -> int:
        """Matmul FLOPs of stage 1 on the terminal (0 for pure lookups)."""
        return 0

    def postprocess_flops(self, n: int) -> int:
        """Matmul FLOPs of stage 3 on the terminal."""
        return 0
