"""Model configurations for the three evaluation models.

The paper evaluates BERT-Large-Uncased, ViT and GPT2 from HuggingFace; we
re-create the exact architectural hyper-parameters (shapes drive latency;
weight values do not).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = [
    "TransformerConfig",
    "bert_large_config",
    "bert_base_config",
    "distilbert_config",
    "gpt2_config",
    "gpt2_medium_config",
    "vit_base_config",
    "vit_large_config",
    "tiny_config",
]


@dataclass(frozen=True)
class TransformerConfig:
    """Hyper-parameters of a transformer layer stack.

    Attributes mirror the paper's notation: ``hidden_size`` is F,
    ``num_heads`` is H, and ``head_dim`` is F_H with ``F = H·F_H``
    (the standard setting the paper assumes throughout Theorem 2).
    """

    hidden_size: int = 768
    num_heads: int = 12
    num_layers: int = 12
    ffn_dim: int = 3072
    vocab_size: int = 30522
    max_positions: int = 512
    activation: str = "gelu"
    layer_norm_eps: float = 1e-12
    is_causal: bool = False
    norm_style: str = "post"  # "post" (BERT/original) or "pre" (GPT-2/ViT)
    type_vocab_size: int = 2  # BERT segment embeddings; 0 disables
    attention_bias: bool = True
    name: str = "transformer"
    extras: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError(
                f"hidden_size={self.hidden_size} not divisible by num_heads={self.num_heads}"
            )
        if self.norm_style not in ("post", "pre"):
            raise ValueError(f"norm_style must be 'post' or 'pre', got {self.norm_style!r}")
        if self.activation not in ("gelu", "relu"):
            raise ValueError(f"unsupported activation {self.activation!r}")
        if min(self.num_layers, self.ffn_dim, self.vocab_size, self.max_positions) < 1:
            raise ValueError("num_layers, ffn_dim, vocab_size, max_positions must be >= 1")

    @property
    def head_dim(self) -> int:
        """F_H — attention feature dimensionality per head."""
        return self.hidden_size // self.num_heads

    def scaled(self, **overrides) -> "TransformerConfig":
        """Copy with overrides — used to shrink models for tests."""
        return replace(self, **overrides)


def bert_large_config() -> TransformerConfig:
    """BERT-Large-Uncased: 24 layers, F=1024, H=16, F_H=64, FFN 4096."""
    return TransformerConfig(
        hidden_size=1024,
        num_heads=16,
        num_layers=24,
        ffn_dim=4096,
        vocab_size=30522,
        max_positions=512,
        activation="gelu",
        norm_style="post",
        is_causal=False,
        name="bert-large-uncased",
    )


def bert_base_config() -> TransformerConfig:
    """BERT-Base: 12 layers, F=768, H=12 — used by fast examples."""
    return TransformerConfig(
        hidden_size=768,
        num_heads=12,
        num_layers=12,
        ffn_dim=3072,
        vocab_size=30522,
        max_positions=512,
        activation="gelu",
        norm_style="post",
        is_causal=False,
        name="bert-base-uncased",
    )


def gpt2_config() -> TransformerConfig:
    """GPT-2 (117M): 12 layers, F=768, H=12, causal, pre-LN."""
    return TransformerConfig(
        hidden_size=768,
        num_heads=12,
        num_layers=12,
        ffn_dim=3072,
        vocab_size=50257,
        max_positions=1024,
        activation="gelu",
        norm_style="pre",
        is_causal=True,
        type_vocab_size=0,
        name="gpt2",
    )


def vit_base_config() -> TransformerConfig:
    """ViT-Base/16: 12 layers, F=768, H=12, pre-LN, 224×224 → 197 tokens."""
    return TransformerConfig(
        hidden_size=768,
        num_heads=12,
        num_layers=12,
        ffn_dim=3072,
        vocab_size=1,  # no token vocabulary; inputs are image patches
        max_positions=197,
        activation="gelu",
        norm_style="pre",
        is_causal=False,
        type_vocab_size=0,
        name="vit-base-patch16-224",
        extras={"image_size": 224, "patch_size": 16, "num_channels": 3},
    )


def distilbert_config() -> TransformerConfig:
    """DistilBERT: 6 layers, F=768 — the distilled model of reference [7].

    Included to demonstrate Section VII-A's point end-to-end: a compressed
    model still runs through Voltage unchanged for a further speed-up.
    """
    return TransformerConfig(
        hidden_size=768,
        num_heads=12,
        num_layers=6,
        ffn_dim=3072,
        vocab_size=30522,
        max_positions=512,
        activation="gelu",
        norm_style="post",
        is_causal=False,
        type_vocab_size=0,  # DistilBERT drops segment embeddings
        name="distilbert-base-uncased",
    )


def gpt2_medium_config() -> TransformerConfig:
    """GPT-2 Medium (345M): 24 layers, F=1024, H=16."""
    return TransformerConfig(
        hidden_size=1024,
        num_heads=16,
        num_layers=24,
        ffn_dim=4096,
        vocab_size=50257,
        max_positions=1024,
        activation="gelu",
        norm_style="pre",
        is_causal=True,
        type_vocab_size=0,
        name="gpt2-medium",
    )


def vit_large_config() -> TransformerConfig:
    """ViT-Large/16: 24 layers, F=1024, H=16, 197 tokens."""
    return TransformerConfig(
        hidden_size=1024,
        num_heads=16,
        num_layers=24,
        ffn_dim=4096,
        vocab_size=1,
        max_positions=197,
        activation="gelu",
        norm_style="pre",
        is_causal=False,
        type_vocab_size=0,
        name="vit-large-patch16-224",
        extras={"image_size": 224, "patch_size": 16, "num_channels": 3},
    )


def tiny_config(**overrides) -> TransformerConfig:
    """A small config for unit tests (fast but structurally complete)."""
    defaults = dict(
        hidden_size=32,
        num_heads=4,
        num_layers=2,
        ffn_dim=64,
        vocab_size=100,
        max_positions=64,
        activation="gelu",
        norm_style="post",
        is_causal=False,
        name="tiny",
    )
    defaults.update(overrides)
    return TransformerConfig(**defaults)
