"""Faithful re-implementations of the paper's three evaluation models.

BERT-Large-Uncased, GPT-2 and ViT-B/16 with their exact architectural
hyper-parameters (latency depends on shapes, not weight values, so weights
are seeded-random — see DESIGN.md's substitution table).
"""

from repro.models.attention import MultiHeadSelfAttention
from repro.models.base import TransformerModel
from repro.models.bert import BertModel
from repro.models.config import (
    TransformerConfig,
    bert_base_config,
    bert_large_config,
    distilbert_config,
    gpt2_config,
    gpt2_medium_config,
    tiny_config,
    vit_base_config,
    vit_large_config,
)
from repro.models.embeddings import PatchEmbeddings, TextEmbeddings
from repro.models.gpt2 import GPT2Model
from repro.models.cache import KVCache, LayerKVCache, layer_forward_cached
from repro.models.layer import FeedForward, TransformerLayer
from repro.models.seq2seq import (
    DecoderLayer,
    PartitionedDecoderLayerExecutor,
    Seq2SeqTransformer,
)
from repro.models.tokenizer import SimpleTokenizer
from repro.models.vit import ViTModel

__all__ = [
    "BertModel",
    "DecoderLayer",
    "KVCache",
    "LayerKVCache",
    "PartitionedDecoderLayerExecutor",
    "Seq2SeqTransformer",
    "layer_forward_cached",
    "FeedForward",
    "GPT2Model",
    "MultiHeadSelfAttention",
    "PatchEmbeddings",
    "SimpleTokenizer",
    "TextEmbeddings",
    "TransformerConfig",
    "TransformerLayer",
    "TransformerModel",
    "ViTModel",
    "bert_base_config",
    "bert_large_config",
    "distilbert_config",
    "gpt2_config",
    "gpt2_medium_config",
    "vit_large_config",
    "tiny_config",
    "vit_base_config",
]
