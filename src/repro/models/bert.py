"""BERT-style encoder model with a sequence-classification head."""

from __future__ import annotations

import numpy as np

from repro.models.base import TransformerModel
from repro.models.config import TransformerConfig, bert_large_config
from repro.models.embeddings import TextEmbeddings
from repro.models.tokenizer import SimpleTokenizer
from repro.tensor.layers import Linear
from repro.tensor.module import Module

__all__ = ["BertPooler", "BertModel"]


class BertPooler(Module):
    """BERT pooler: ``tanh(W · h_[CLS] + b)`` over the first token."""

    def __init__(self, hidden_size: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.dense = Linear(hidden_size, hidden_size, rng=rng)

    def forward(self, hidden: np.ndarray) -> np.ndarray:
        return np.tanh(self.dense(hidden[0]))


class BertModel(TransformerModel):
    """BERT encoder + pooler + classifier (the paper's text-classification task).

    ``forward`` maps token ids (or raw text via :meth:`encode_text`) to class
    logits.  The default configuration is BERT-Large-Uncased (24 layers,
    F=1024, H=16) as in the evaluation.
    """

    def __init__(
        self,
        config: TransformerConfig | None = None,
        num_classes: int = 2,
        rng: np.random.Generator | None = None,
    ):
        config = config if config is not None else bert_large_config()
        if config.is_causal:
            raise ValueError("BertModel is a bidirectional encoder; config.is_causal must be False")
        rng = rng if rng is not None else np.random.default_rng(0)
        super().__init__(config, rng=rng)
        self.embeddings = TextEmbeddings(
            vocab_size=config.vocab_size,
            hidden_size=config.hidden_size,
            max_positions=config.max_positions,
            type_vocab_size=config.type_vocab_size,
            use_layer_norm=True,
            layer_norm_eps=config.layer_norm_eps,
            rng=rng,
        )
        self.pooler = BertPooler(config.hidden_size, rng=rng)
        self.classifier = Linear(config.hidden_size, num_classes, rng=rng)
        self.num_classes = num_classes
        self.tokenizer = SimpleTokenizer(config.vocab_size)

    def preprocess(self, raw) -> np.ndarray:
        """Token ids ``(N,)`` (or text) → embedded features ``(N, F)``."""
        if isinstance(raw, str):
            raw = self.tokenizer.encode(raw, max_length=self.config.max_positions)
        return self.embeddings(np.asarray(raw))

    def postprocess(self, hidden: np.ndarray) -> np.ndarray:
        """Final hidden states → class logits ``(num_classes,)``."""
        return self.classifier(self.pooler(hidden))

    def encode_text(self, text: str) -> np.ndarray:
        """Convenience: text → token ids under the model's tokenizer."""
        return self.tokenizer.encode(text, max_length=self.config.max_positions)

    def classify(self, text: str) -> int:
        """Text → predicted class index (end-to-end single-device path)."""
        return int(np.argmax(self.forward(self.encode_text(text))))

    def postprocess_flops(self, n: int) -> int:
        """Pooler (F×F on the CLS row) + classifier (F×classes)."""
        f = self.config.hidden_size
        return f * f + f * self.num_classes
