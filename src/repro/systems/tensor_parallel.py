"""Tensor parallelism (Megatron-LM style) — the paper's main competitor.

Each device holds a *shard* of every layer's weights: a subset of attention
heads (column-sharded Q/K/V, row-sharded output projection) and a slice of
the FFN (column-sharded fc1, row-sharded fc2).  Producing the full layer
output requires summing the per-device partials — one All-Reduce after the
attention block and one after the FFN (Fig. 2), which is exactly the
``4(K-1)NF/K`` per-layer traffic of Section V-C.

Head counts need not divide evenly: heads and FFN columns are split with
``array_split`` semantics, and devices left without heads contribute zero
partials (this is what lets the K=5 point of Fig. 4 exist for H=16 models).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.process_runtime import resolve_runtime
from repro.cluster.runtime import CommStats
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import LatencyBreakdown
from repro.core import complexity
from repro.core.orders import AttentionParams, attention_full
from repro.core.partition import split_evenly
from repro.models.base import TransformerModel
from repro.models.layer import TransformerLayer
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["TensorParallelSystem"]


@dataclass
class _LayerShard:
    """One device's slice of one transformer layer."""

    num_heads: int          # local head count (may be zero)
    wq: np.ndarray          # (F, local_heads·F_H)
    wk: np.ndarray
    wv: np.ndarray
    bq: np.ndarray | None
    bk: np.ndarray | None
    bv: np.ndarray | None
    wo: np.ndarray          # (local_heads·F_H, F) — row shard
    bo: np.ndarray | None   # applied on exactly one device (partials are summed)
    fc1_w: np.ndarray       # (F, local_ffn) — column shard
    fc1_b: np.ndarray | None
    fc2_w: np.ndarray       # (local_ffn, F) — row shard
    fc2_b: np.ndarray | None  # applied on exactly one device

    @property
    def local_ffn(self) -> int:
        return self.fc1_w.shape[1]


def _column_splits(total: int, k: int) -> list[slice]:
    """array_split boundaries as slices (first ``total % k`` parts get +1)."""
    slices, start = [], 0
    for width in split_evenly(total, k):
        slices.append(slice(start, start + width))
        start += width
    return slices


def shard_layer(layer: TransformerLayer, k: int) -> list[_LayerShard]:
    """Split one layer's weights across ``k`` devices, Megatron-style.

    Head geometry comes from the attention module itself (not the config)
    so head-pruned layers shard correctly.
    """
    cfg = layer.config
    attn = layer.attention
    fh = attn.head_dim
    head_slices = _column_splits(attn.num_heads, k)
    ffn_slices = _column_splits(cfg.ffn_dim, k)

    def col(weight: np.ndarray, head_slice: slice) -> np.ndarray:
        return weight[:, head_slice.start * fh : head_slice.stop * fh]

    def colb(bias, head_slice: slice):
        return bias.data[head_slice.start * fh : head_slice.stop * fh] if bias else None

    shards = []
    for rank in range(k):
        hs, fs = head_slices[rank], ffn_slices[rank]
        shards.append(
            _LayerShard(
                num_heads=hs.stop - hs.start,
                wq=col(attn.query.weight.data, hs),
                wk=col(attn.key.weight.data, hs),
                wv=col(attn.value.weight.data, hs),
                bq=colb(attn.query.bias, hs),
                bk=colb(attn.key.bias, hs),
                bv=colb(attn.value.bias, hs),
                wo=attn.output.weight.data[hs.start * fh : hs.stop * fh, :],
                bo=attn.output.bias.data if (rank == 0 and attn.output.bias) else None,
                fc1_w=layer.ffn.fc1.weight.data[:, fs],
                fc1_b=layer.ffn.fc1.bias.data[fs] if layer.ffn.fc1.bias else None,
                fc2_w=layer.ffn.fc2.weight.data[fs, :],
                fc2_b=layer.ffn.fc2.bias.data if (rank == 0 and layer.ffn.fc2.bias) else None,
            )
        )
    return shards


def _attention_partial(
    shard: _LayerShard, x: np.ndarray, causal: bool
) -> np.ndarray:
    """This device's contribution to MultiHead(x)·W_O — zero if no heads."""
    n, f = x.shape
    if shard.num_heads == 0:
        return np.zeros((n, f), dtype=x.dtype)
    params = AttentionParams(
        wq=shard.wq, wk=shard.wk, wv=shard.wv,
        num_heads=shard.num_heads, bq=shard.bq, bk=shard.bk, bv=shard.bv,
    )
    attended = attention_full(x, params, causal=causal)  # (N, local_heads·F_H)
    partial = attended @ shard.wo
    if shard.bo is not None:
        partial = partial + shard.bo
    return partial


def _ffn_partial(shard: _LayerShard, y: np.ndarray, act) -> np.ndarray:
    """This device's FFN partial: act(y·fc1_shard)·fc2_shard."""
    hidden = y @ shard.fc1_w
    if shard.fc1_b is not None:
        hidden = hidden + shard.fc1_b
    partial = act(hidden) @ shard.fc2_w
    if shard.fc2_b is not None:
        partial = partial + shard.fc2_b
    return partial


class TensorParallelSystem(InferenceSystem):
    """Inference with per-layer weight sharding and two All-Reduces."""

    name = "tensor-parallel"

    def __init__(self, model: TransformerModel, cluster: ClusterSpec):
        super().__init__(model, cluster)
        self.shards: list[list[_LayerShard]] = [
            shard_layer(layer, self.k) for layer in model.layers
        ]

    # -- cost accounting -------------------------------------------------------

    def _device_layer_flops(self, shard: _LayerShard, n: int) -> int:
        cfg = self.model.config
        attention = self.model.layers[0].attention
        f, fh = cfg.hidden_size, attention.head_dim
        per_head = complexity.gamma_eq3(n, n, f, fh).matmul  # full-N attention head
        attn = shard.num_heads * per_head + n * (shard.num_heads * fh) * f
        ffn = 2 * n * f * shard.local_ffn
        return attn + ffn

    # -- host-emulated execution with simulated latency -------------------------

    def run(self, raw) -> InferenceResult:
        latency = LatencyBreakdown()
        x = self._terminal_preprocess(raw, latency)
        n, f = x.shape
        wire = activation_bytes(n, f)
        causal = self.model.config.is_causal
        act = self.model.layers[0].ffn._act
        norm_style = self.model.config.norm_style

        latency.add("broadcast input", "comm", self.sim.broadcast(wire))

        allreduce_bytes_per_device = 0.0
        for index, layer in enumerate(self.model.layers):
            shards = self.shards[index]
            flops = [self._device_layer_flops(shard, n) for shard in shards]
            latency.add(
                "shard compute", "compute", self.sim.compute_makespan(flops), layer=index
            )
            # two All-Reduces per layer (Fig. 2)
            comm = 2 * self.sim.all_reduce(wire)
            latency.add("2x all-reduce", "comm", comm, layer=index)
            allreduce_bytes_per_device += 2 * (2 * (self.k - 1) * wire / self.k)

            attn_input = x if norm_style == "post" else layer.ln1(x)
            attn_sum = sum(_attention_partial(shard, attn_input, causal) for shard in shards)
            if norm_style == "post":
                y = layer.ln1(attn_sum + x)
                ffn_sum = sum(_ffn_partial(shard, y, act) for shard in shards)
                x = layer.ln2(y + ffn_sum)
            else:
                y = x + attn_sum
                ffn_input = layer.ln2(y)
                ffn_sum = sum(_ffn_partial(shard, ffn_input, act) for shard in shards)
                x = y + ffn_sum

        latency.add("return hidden to terminal", "comm", self.sim.point_to_point(wire))
        output = self._terminal_postprocess(x, latency)
        return InferenceResult(
            output=output,
            latency=latency,
            meta={
                "system": self.name,
                "n": n,
                "devices": self.k,
                "allreduce_bytes_per_device": allreduce_bytes_per_device,
            },
        )

    # -- real distributed execution (threads or processes) -----------------------

    def execute_threaded(
        self, raw, overlap: bool = False
    ) -> tuple[np.ndarray, list[CommStats]]:
        """Run the shard/All-Reduce protocol on real thread workers.

        Kept as the historical entry point; equivalent to
        ``execute_distributed(raw, runtime="threaded", overlap=overlap)``.
        """
        return self.execute_distributed(raw, runtime="threaded", overlap=overlap)

    def execute_distributed(
        self, raw, runtime=None, overlap: bool = False
    ) -> tuple[np.ndarray, list[CommStats]]:
        """Run the shard/All-Reduce protocol on real concurrent workers.

        ``runtime`` selects the backend exactly as in
        :meth:`VoltageSystem.execute_distributed
        <repro.systems.voltage.VoltageSystem.execute_distributed>`:
        ``None``/``"threaded"``, ``"process"`` (one OS process per rank over
        loopback TCP), or a runtime instance — same worker body, so outputs
        are bit-identical across backends.

        With ``overlap``, the two per-layer All-Reduces go through the
        nonblocking ring (:meth:`~repro.cluster.runtime.WorkerContext.
        all_reduce_async`) and the residual-add/layer-norm epilogue is
        applied to each reduced row slice as it comes off the ring, while
        the remaining slices are still in flight.  Those epilogues are
        row-wise, and the async reduce accumulates partials in the same
        rank order as the blocking one, so the result is bit-identical to
        :meth:`run` either way.
        """
        x0 = self.model.preprocess(raw)
        causal = self.model.config.is_causal
        act = self.model.layers[0].ffn._act
        norm_style = self.model.config.norm_style
        layers = list(self.model.layers)
        all_shards = self.shards

        def streamed(ctx, handle, epilogue, out):
            """Fill ``out`` slice-by-slice as reduced chunks arrive."""
            for src in handle.arrival_order():
                chunk = handle.chunk(src)
                lo, hi = handle.range_of(src)
                if hi > lo:
                    out[lo:hi] = epilogue(chunk, lo, hi)
            return out

        def worker_overlapped(ctx) -> np.ndarray:
            x = x0
            for layer, shards in zip(layers, all_shards):
                shard = shards[ctx.rank]
                attn_input = x if norm_style == "post" else layer.ln1(x)
                handle = ctx.all_reduce_async(
                    _attention_partial(shard, attn_input, causal)
                )
                y = np.empty_like(x)
                if norm_style == "post":
                    streamed(ctx, handle, lambda c, lo, hi: layer.ln1(c + x[lo:hi]), y)
                    ffn_input = y
                else:
                    ffn_input = np.empty_like(x)
                    def attn_epilogue(c, lo, hi):
                        y[lo:hi] = x[lo:hi] + c
                        return layer.ln2(y[lo:hi])
                    streamed(ctx, handle, attn_epilogue, ffn_input)
                handle = ctx.all_reduce_async(_ffn_partial(shard, ffn_input, act))
                x_next = np.empty_like(x)
                if norm_style == "post":
                    streamed(ctx, handle, lambda c, lo, hi: layer.ln2(y[lo:hi] + c), x_next)
                else:
                    streamed(ctx, handle, lambda c, lo, hi: y[lo:hi] + c, x_next)
                x = x_next
            return x

        def worker(ctx) -> np.ndarray:
            if overlap and ctx.world_size > 1:
                return worker_overlapped(ctx)
            x = x0
            for layer, shards in zip(layers, all_shards):
                shard = shards[ctx.rank]
                attn_input = x if norm_style == "post" else layer.ln1(x)
                attn_sum = ctx.all_reduce(_attention_partial(shard, attn_input, causal))
                if norm_style == "post":
                    y = layer.ln1(attn_sum + x)
                    ffn_sum = ctx.all_reduce(_ffn_partial(shard, y, act))
                    x = layer.ln2(y + ffn_sum)
                else:
                    y = x + attn_sum
                    ffn_sum = ctx.all_reduce(_ffn_partial(shard, layer.ln2(y), act))
                    x = y + ffn_sum
            return x

        results, stats = resolve_runtime(runtime, self.k).run(worker)
        hidden = results[0]
        for other in results[1:]:
            np.testing.assert_array_equal(hidden, other)
        output = self.model.postprocess(self.model.final_norm(hidden))
        return output, stats
