"""Voltage — Algorithm 2: position-partitioned distributed inference.

Per request (Fig. 3):

1. the terminal pre-processes and broadcasts the input features ``x``;
2. for every transformer layer, each device computes its position partition
   via Algorithm 1 (adaptive computation order), then all devices
   synchronise through a single All-Gather;
3. the final layer's partitions are sent to the terminal, which
   post-processes and answers the user.

``run`` host-emulates the protocol exactly (the partition outputs really are
computed with the partitioned executors and reassembled), while the latency
is simulated with the calibrated device/network models.  The
``execute_threaded`` method additionally runs the same protocol on real
concurrent workers with byte accounting — used by the integration tests to
reconcile the analytic communication volumes.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cluster.collectives import all_gather_arrays
from repro.cluster.process_runtime import resolve_runtime
from repro.cluster.runtime import CommStats
from repro.cluster.timeline import LatencyBreakdown
from repro.core.complexity import prologue_flops
from repro.core.layer import OrderPolicy, PartitionedLayerExecutor
from repro.core.partition import PartitionScheme
from repro.core.planner import makespan_optimal_scheme
from repro.core.schedule import LayerSchedule
from repro.models.base import TransformerModel
from repro.cluster.spec import ClusterSpec
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["VoltageSystem"]


#: Supported activation wire encodings: name -> (bytes per element).
WIRE_DTYPES = {"float32": 4, "float16": 2, "int8": 1}


class VoltageSystem(InferenceSystem):
    """The paper's system: position-wise partitioning with adaptive orders."""

    name = "voltage"

    def __init__(
        self,
        model: TransformerModel,
        cluster: ClusterSpec,
        scheme: PartitionScheme | str | None = None,
        policy: OrderPolicy | None = None,
        wire_dtype: str = "float32",
        overlap: bool = False,
    ):
        """Deploy ``model`` on ``cluster``.

        ``scheme`` may be a :class:`PartitionScheme`, the string ``"auto"``
        (makespan-optimal ratios for heterogeneous clusters, planned per
        request length), or None for the paper's even 1/K split.

        ``wire_dtype`` implements the paper's closing future-work item
        ("further optimizations to communication protocols"): activations
        cross the network as float32 (default, the paper's setting),
        float16 (half the All-Gather volume) or symmetric int8 (a quarter).
        Compression is *really applied* — partitions are encoded, decoded,
        and the (small) numerical error propagates into the outputs — so
        the accuracy cost of the bandwidth saving is measurable, not
        assumed.

        ``overlap`` hides each inner All-Gather behind next-layer compute a
        device can run on rows it already holds (the own-partition Q
        projection).  :meth:`run` models it as per-layer
        ``exposed = max(0, comm - hideable)`` and :meth:`execute_threaded`
        really streams chunks off the ring — bit-identical outputs either
        way.
        """
        super().__init__(model, cluster)
        if isinstance(scheme, (PartitionScheme, LayerSchedule)) and (
            scheme.num_devices != cluster.num_devices
        ):
            raise ValueError(
                f"scheme covers {scheme.num_devices} devices, cluster has {cluster.num_devices}"
            )
        if wire_dtype not in WIRE_DTYPES:
            raise ValueError(
                f"wire_dtype must be one of {sorted(WIRE_DTYPES)}, got {wire_dtype!r}"
            )
        self._scheme = scheme
        self.policy = policy if policy is not None else OrderPolicy()
        self.overlap = overlap
        self.wire_dtype = wire_dtype
        self.wire_itemsize = WIRE_DTYPES[wire_dtype]
        self.executors = [
            PartitionedLayerExecutor(layer, policy=self.policy) for layer in model.layers
        ]

    def _encode_for_wire(self, partition_output: np.ndarray) -> np.ndarray:
        """Apply the configured lossy wire encoding to one partition."""
        if self.wire_dtype == "float32" or partition_output.size == 0:
            return partition_output
        if self.wire_dtype == "float16":
            return partition_output.astype(np.float16).astype(partition_output.dtype)
        from repro.compress.quantize import dequantize_tensor, quantize_tensor

        quantized = quantize_tensor(partition_output, per_channel=True)
        return dequantize_tensor(quantized, dtype=str(partition_output.dtype))

    def scheme_for(self, n: int, layer: int = 0) -> PartitionScheme:
        """Resolve the partition scheme for a length-``n`` request.

        With a :class:`LayerSchedule`, different layers may use different
        schemes (Section V-B's penalty-free per-layer flexibility).
        """
        if isinstance(self._scheme, LayerSchedule):
            return self._scheme.scheme_for_layer(layer)
        if isinstance(self._scheme, PartitionScheme):
            return self._scheme
        if self._scheme == "auto":
            return makespan_optimal_scheme(
                self.model.config, n, self.cluster.device_gflops, policy=self.policy
            )
        if self._scheme is None:
            return PartitionScheme.even(self.k)
        raise ValueError(f"unsupported scheme specifier {self._scheme!r}")

    # -- distributed autoregressive decode (position-sharded KV cache) ---------

    def generate_distributed(
        self, prompt_ids, max_new_tokens: int = 8, runtime=None, timeout=None,
        attention: str = "gathered",
    ):
        """Greedy decode on ``K`` ranks; see :mod:`repro.systems.decode`.

        ``attention="gathered"`` reassembles the full K/V per step
        (bit-identical to ``generate_cached``); ``attention="distributed"``
        attends per-shard with a log-sum-exp combine (exact up to float
        tolerance, per-step wire volume independent of sequence length).
        """
        from repro.systems.decode import generate_distributed

        return generate_distributed(
            self, prompt_ids, max_new_tokens=max_new_tokens, runtime=runtime,
            timeout=timeout, attention=attention,
        )

    def run_decode(self, prompt_ids, max_new_tokens: int = 8, attention: str = "gathered"):
        """Host-emulated sharded decode with a simulated per-token timeline."""
        from repro.systems.decode import run_decode

        return run_decode(
            self, prompt_ids, max_new_tokens=max_new_tokens, attention=attention
        )

    # -- host-emulated execution with simulated latency ------------------------

    def _hideable_seconds(self, n: int, f: int, next_executor, next_parts) -> float:
        """Seconds of next-layer compute every device can run mid-ring.

        The own-partition Q projection depends only on rows a device already
        holds, so it can run while the All-Gather circulates.  Taking the
        *minimum* over devices keeps the modeled exposure a conservative
        upper bound on the true overlapped critical path (a device with an
        empty next partition can hide nothing, pinning the bound at zero).
        """
        attention = next_executor.layer.attention
        return min(
            device.compute_seconds(
                prologue_flops(part.length, f, attention.num_heads, attention.head_dim)
            )
            for device, part in zip(self.cluster.devices, next_parts)
        )

    def run(self, raw) -> InferenceResult:
        latency = LatencyBreakdown()
        x = self._terminal_preprocess(raw, latency)
        n, f = x.shape
        layer_schemes = [
            self.scheme_for(n, layer=index) for index in range(len(self.executors))
        ]

        latency.add("broadcast input", "comm", self.sim.broadcast(activation_bytes(n, f)))

        comm_bytes_per_device = 0.0
        orders_used: list[str] = []
        exposed_comm_per_layer: list[float] = []
        hidden_comm_s = 0.0
        for index, executor in enumerate(self.executors):
            parts = layer_schemes[index].positions(n)
            outputs = [
                self._encode_for_wire(executor.forward_partition(x, part))
                for part in parts
            ]
            flops = [
                executor.partition_flops(n, part.length) if part.length else 0
                for part in parts
            ]
            latency.add(
                "partition compute", "compute", self.sim.compute_makespan(flops), layer=index
            )
            chunk_bytes = [
                activation_bytes(part.length, f, itemsize=self.wire_itemsize)
                for part in parts
            ]
            if index + 1 < len(self.executors):
                # Algorithm 2 line 10: synchronise partitions across devices
                if self.overlap:
                    hideable = self._hideable_seconds(
                        n, f, self.executors[index + 1],
                        layer_schemes[index + 1].positions(n),
                    )
                    exposed, full = self.sim.all_gather_overlapped(chunk_bytes, hideable)
                    latency.add(
                        "all-gather (overlapped)", "comm", exposed,
                        layer=index, hidden_s=full - exposed,
                    )
                    exposed_comm_per_layer.append(exposed)
                    hidden_comm_s += full - exposed
                else:
                    comm = self.sim.all_gather(chunk_bytes)
                    latency.add("all-gather", "comm", comm, layer=index)
                    exposed_comm_per_layer.append(comm)
                # the wire volume is unchanged by overlapping — only *when*
                # the bytes move relative to compute changes
                comm_bytes_per_device += sum(chunk_bytes) - max(chunk_bytes)
            else:
                # Algorithm 2 line 8: final partitions go to the terminal only
                comm = self.sim.gather(chunk_bytes)
                latency.add("gather to terminal", "comm", comm, layer=index)
            x = all_gather_arrays(outputs)
            first = next((p for p in parts if p.length), parts[0])
            orders_used.append(
                "eq8" if executor.select_order(n, max(first.length, 1)).is_reordered else "eq3"
            )

        output = self._terminal_postprocess(x, latency)
        # a LayerSchedule may change the scheme per layer (Section V-B); the
        # meta must describe what actually ran, not just layer 0's ratios
        ratios_per_layer = [s.ratios for s in layer_schemes]
        uniform = all(r == ratios_per_layer[0] for r in ratios_per_layer)
        return InferenceResult(
            output=output,
            latency=latency,
            meta={
                "system": self.name,
                "n": n,
                "devices": self.k,
                "scheme": ratios_per_layer[0] if uniform else ratios_per_layer,
                "scheme_uniform": uniform,
                "scheme_per_layer": ratios_per_layer,
                "orders": orders_used,
                "wire_dtype": self.wire_dtype,
                "allgather_bytes_per_device": comm_bytes_per_device,
                "overlap": self.overlap,
                "exposed_comm_per_layer": exposed_comm_per_layer,
                "hidden_comm_s": hidden_comm_s,
            },
        )

    # -- real distributed execution (threads or processes) ----------------------

    def execute_threaded(
        self, raw, overlap: bool | None = None
    ) -> tuple[np.ndarray, list[CommStats]]:
        """Run Algorithm 2 on real concurrent thread workers.

        Kept as the historical entry point; equivalent to
        ``execute_distributed(raw, runtime="threaded", overlap=overlap)``.
        """
        return self.execute_distributed(raw, runtime="threaded", overlap=overlap)

    def execute_distributed(
        self, raw, runtime=None, overlap: bool | None = None
    ) -> tuple[np.ndarray, list[CommStats]]:
        """Run Algorithm 2 on real concurrent workers.

        ``runtime`` selects the backend: ``None``/``"threaded"`` runs one
        thread per rank over in-process mailboxes, ``"process"`` runs one OS
        process per rank over loopback TCP sockets
        (:class:`~repro.cluster.process_runtime.ProcessRuntime` — the
        paper's deployment shape), or pass an already-built runtime.  The
        worker body is identical either way, so outputs are bit-identical
        across backends.

        Every worker holds the full model replica (Voltage's deployment
        assumption), computes its partition per layer, applies the configured
        wire encoding, and All-Gathers with the others.  Returns the
        post-processed output and per-worker communication statistics — the
        integration tests check the output matches :meth:`run` *bit-for-bit
        for every wire_dtype* and the byte counters match Section V-C.

        With ``overlap`` (default: the system's ``overlap`` setting), the
        inner All-Gathers go through the nonblocking ring: each worker
        launches :meth:`~repro.cluster.runtime.WorkerContext.all_gather_async`
        after encoding its partition, then consumes chunks as they come off
        the ring — copying rows into the next layer's input, applying the
        next layer's (row-wise) ln1, and firing the own-partition Q
        projection as soon as its rows are complete — while the remaining
        ring steps are still in flight.  Only bitwise row-safe work is
        streamed (see INTERNALS §11), so the output matches the blocking
        path bit-for-bit for every wire_dtype.
        """
        if overlap is None:
            overlap = self.overlap
        x0 = self.model.preprocess(raw)
        n, feat = x0.shape
        executors = self.executors
        layer_parts = [
            self.scheme_for(n, layer=index).positions(n)
            for index in range(len(executors))
        ]
        tracer = obs.current_tracer()

        def stream_next_layer(ctx, handle, parts, index):
            """Consume ring chunks as they arrive; pre-run next-layer work.

            Returns ``(x, normed, qp)`` for the next layer: the assembled
            gather, the per-chunk ln1 of it (pre-LN layers only) and the
            own-partition Q projection — all bitwise identical to what the
            blocking path would compute from the assembled array, because
            every streamed op is row-wise (or an identically-shaped GEMM on
            identical operand values).
            """
            from repro.tensor import functional as F

            spans = [(p.start, p.stop) for p in parts]
            next_exec = executors[index + 1]
            own = layer_parts[index + 1][ctx.rank]
            pre_ln = next_exec.config.norm_style != "post"
            x_buf = np.empty((n, feat), dtype=x0.dtype)
            normed_buf = np.empty_like(x_buf) if pre_ln else None
            arrived = [False] * ctx.world_size
            qp = None
            params = next_exec.layer.attention.attention_params()
            with tracer.span(
                "overlap stream", cat="runtime", kind="compute",
                track=f"rank {ctx.rank}", device=ctx.rank, layer=index,
            ):
                for src in handle.arrival_order():
                    chunk = handle.chunk(src)
                    lo, hi = spans[src]
                    if hi > lo:
                        x_buf[lo:hi] = chunk
                        if pre_ln:
                            normed_buf[lo:hi] = next_exec.layer.ln1(x_buf[lo:hi])
                    arrived[src] = True
                    if qp is None and own.length and _covered(arrived, spans, own):
                        base = normed_buf if pre_ln else x_buf
                        qp = F.linear(base[own.start : own.stop], params.wq, params.bq)
            # every chunk was consumed, so the ring is complete — no need to
            # wait() (which would also concatenate a result we already built)
            ctx._add_stats(bytes_copied=x_buf.nbytes)
            return x_buf, normed_buf, qp

        def worker(ctx) -> np.ndarray:
            x = x0  # broadcast of the input features (replicated host memory)
            normed = qp = None
            for index, (executor, parts) in enumerate(zip(executors, layer_parts)):
                with tracer.span(
                    "partition compute", cat="runtime", kind="compute",
                    track=f"rank {ctx.rank}", device=ctx.rank, layer=index,
                ):
                    out = executor.forward_partition(
                        x, parts[ctx.rank], normed=normed, qp=qp
                    )
                    # what crosses the network must be the *encoded* partition,
                    # exactly as run() emulates it — skipping this made
                    # float16/int8 threaded outputs diverge from run()'s
                    out = self._encode_for_wire(out)
                normed = qp = None
                if not overlap or index + 1 >= len(executors) or ctx.world_size == 1:
                    x = ctx.all_gather(out, axis=0)
                    continue
                handle = ctx.all_gather_async(out, axis=0)
                x, normed, qp = stream_next_layer(ctx, handle, parts, index)
            return x

        results, stats = resolve_runtime(runtime, self.k).run(worker)
        hidden = results[0]
        for other in results[1:]:
            np.testing.assert_array_equal(hidden, other)
        output = self.model.postprocess(self.model.final_norm(hidden))
        return output, stats


def _covered(arrived: list[bool], spans: list[tuple[int, int]], part) -> bool:
    """True once every chunk overlapping ``part``'s rows has arrived."""
    for flag, (lo, hi) in zip(arrived, spans):
        if not flag and lo < part.stop and hi > part.start:
            return False
    return True
