"""Pipeline parallelism — layer-wise staging across devices.

Included for the Section V-C comparison: pipelining optimises *throughput*
under a stream of requests but cannot reduce the latency of an individual
request — with batch size 1 every stage waits for its predecessor, so the
request still traverses all layers sequentially *plus* K-1 inter-stage hops.

``run`` serves a single request (the latency story); ``serve_stream``
simulates a request stream through the pipeline using resource reservations
(devices and links are serially reusable), demonstrating the throughput
benefit the paper concedes to pipeline parallelism — and why it is the wrong
tool for sporadic edge traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.simulator import Resource
from repro.core.partition import split_evenly
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import LatencyBreakdown
from repro.core.layer import PartitionedLayerExecutor
from repro.models.base import TransformerModel
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["PipelineParallelSystem", "StreamReport"]


def _stage_splits(num_layers: int, k: int) -> list[range]:
    ranges, start = [], 0
    for width in split_evenly(num_layers, k):
        ranges.append(range(start, start + width))
        start += width
    return ranges


@dataclass(frozen=True)
class StreamReport:
    """Result of pushing a request stream through the pipeline."""

    request_latencies: list[float]
    makespan_seconds: float

    @property
    def mean_latency(self) -> float:
        return sum(self.request_latencies) / len(self.request_latencies)

    @property
    def throughput_rps(self) -> float:
        return len(self.request_latencies) / self.makespan_seconds if self.makespan_seconds else 0.0


class PipelineParallelSystem(InferenceSystem):
    """Contiguous layer stages, one per device, daisy-chained activations."""

    name = "pipeline-parallel"

    def __init__(self, model: TransformerModel, cluster: ClusterSpec):
        super().__init__(model, cluster)
        self.stages = _stage_splits(model.num_layers, self.k)

    def _stage_flops(self, stage: range, n: int) -> float:
        return sum(
            PartitionedLayerExecutor(self.model.layers[i]).full_flops(n) for i in stage
        )

    def run(self, raw) -> InferenceResult:
        latency = LatencyBreakdown()
        x = self._terminal_preprocess(raw, latency)
        n, f = x.shape
        wire = activation_bytes(n, f)

        latency.add("ship input to stage 0", "comm", self.sim.point_to_point(wire))
        for rank, stage in enumerate(self.stages):
            device = self.cluster.devices[rank]
            flops = self._stage_flops(stage, n)
            latency.add(f"stage {rank} compute", "compute", device.compute_seconds(flops))
            for index in stage:
                x = self.model.layers[index](x)
            hop = "return hidden to terminal" if rank == self.k - 1 else f"stage {rank}->{rank + 1}"
            latency.add(hop, "comm", self.sim.point_to_point(wire))

        output = self._terminal_postprocess(x, latency)
        return InferenceResult(
            output=output,
            latency=latency,
            meta={"system": self.name, "n": n, "devices": self.k,
                  "stage_layers": [len(s) for s in self.stages]},
        )

    def serve_stream(self, n: int, num_requests: int, arrival_interval: float = 0.0) -> StreamReport:
        """Simulate ``num_requests`` length-``n`` requests through the pipeline.

        Each stage's device and each inter-stage link are FIFO resources;
        request ``r`` enters at ``r · arrival_interval``.  With a saturated
        stream the pipeline's throughput approaches ``1 / max_stage_time``
        while per-request latency never drops below the single-request value
        — the crux of the paper's latency-vs-throughput argument.
        """
        if num_requests < 1:
            raise ValueError(f"need at least one request, got {num_requests}")
        f = self.model.config.hidden_size
        wire = activation_bytes(n, f)
        devices = [Resource(f"stage-{i}") for i in range(self.k)]
        links = [Resource(f"link-{i}") for i in range(self.k + 1)]  # terminal->0 ... k-1->terminal
        hop_time = self.sim.point_to_point(wire)
        stage_times = [
            self.cluster.devices[i].compute_seconds(self._stage_flops(stage, n))
            for i, stage in enumerate(self.stages)
        ]

        latencies = []
        finish_last = 0.0
        for request in range(num_requests):
            t = request * arrival_interval
            _, t = links[0].reserve(t, hop_time)
            for rank in range(self.k):
                _, t = devices[rank].reserve(t, stage_times[rank])
                _, t = links[rank + 1].reserve(t, hop_time)
            latencies.append(t - request * arrival_interval)
            finish_last = max(finish_last, t)
        return StreamReport(request_latencies=latencies, makespan_seconds=finish_last)
