"""Data parallelism — the batch-splitting baseline of Section V-C.

Each device holds a full model replica and serves a disjoint subset of the
*batch*.  There is no intra-request parallelism at all, which is the paper's
point: with the edge-typical batch size of 1 exactly one device works and
the latency is the single-device latency plus shipping overhead.  Included
so the Section V-C comparison (data vs pipeline vs tensor vs position
parallelism) is fully executable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.timeline import LatencyBreakdown
from repro.core.layer import PartitionedLayerExecutor
from repro.core.partition import split_evenly
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["BatchResult", "DataParallelSystem"]


@dataclass
class BatchResult:
    """Outputs for a whole batch plus the batch-level latency."""

    outputs: list[np.ndarray]
    latency: LatencyBreakdown
    meta: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.latency.total_seconds


class DataParallelSystem(InferenceSystem):
    """Full-replica devices each serving a slice of the request batch."""

    name = "data-parallel"

    def _request_flops(self, n: int) -> float:
        return sum(
            PartitionedLayerExecutor(layer).full_flops(n) for layer in self.model.layers
        )

    def run_batch(self, raws: list) -> BatchResult:
        """Serve a batch: requests are assigned round-robin-contiguously.

        Batch latency = terminal pre-processing of everything + shipping +
        the *slowest device's* serial execution of its requests + gather.
        """
        if not raws:
            raise ValueError("batch must contain at least one request")
        latency = LatencyBreakdown()

        inputs = [self.model.preprocess(raw) for raw in raws]
        pre_flops = sum(self.model.preprocess_flops(x.shape[0]) for x in inputs)
        latency.add("preprocess batch (terminal)", "compute", self.sim.terminal_compute(pre_flops))

        counts = split_evenly(len(raws), self.k)
        boundaries = np.cumsum([0] + counts)
        assignments = [inputs[a:b] for a, b in zip(boundaries[:-1], boundaries[1:])]

        # ship each device its requests (serialised on the terminal NIC)
        ship = sum(
            self.sim.point_to_point(activation_bytes(x.shape[0], x.shape[1]))
            for x in inputs
        )
        latency.add("scatter requests", "comm", ship)

        # slowest device gates the batch
        device_seconds = []
        for device, slice_inputs in zip(self.cluster.devices, assignments):
            work = sum(self._request_flops(x.shape[0]) for x in slice_inputs)
            device_seconds.append(device.compute_seconds(work))
        latency.add("replica compute (slowest device)", "compute", max(device_seconds))

        gather = sum(
            self.sim.point_to_point(activation_bytes(x.shape[0], x.shape[1]))
            for x in inputs
        )
        latency.add("gather results", "comm", gather)

        outputs = []
        post_flops = 0
        for x in inputs:
            hidden = self.model.final_norm(self.model_encode(x))
            outputs.append(self.model.postprocess(hidden))
            post_flops += self.model.postprocess_flops(x.shape[0])
        latency.add("postprocess batch (terminal)", "compute", self.sim.terminal_compute(post_flops))

        return BatchResult(
            outputs=outputs,
            latency=latency,
            meta={
                "system": self.name,
                "batch": len(raws),
                "devices": self.k,
                "requests_per_device": counts,
            },
        )

    def model_encode(self, x: np.ndarray) -> np.ndarray:
        """Plain full-model layer stack (replica execution)."""
        for layer in self.model.layers:
            x = layer(x)
        return x

    def run(self, raw) -> InferenceResult:
        """Single request — exercises the paper's batch-size-1 argument."""
        batch = self.run_batch([raw])
        return InferenceResult(
            output=batch.outputs[0], latency=batch.latency, meta=batch.meta
        )
