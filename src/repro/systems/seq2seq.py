"""Distributed seq2seq inference: Voltage across encoder AND decoder stacks.

Extends Algorithm 2 to the encoder–decoder architecture:

1. the terminal embeds the source and broadcasts it; encoder layers run
   position-partitioned with an All-Gather each — after the last one every
   device holds the full memory;
2. the terminal embeds the target prefix and broadcasts it; decoder layers
   run position-partitioned (self-attention causal, cross-attention against
   the replicated memory) with an All-Gather each;
3. only the device owning the *last* target position ships its row to the
   terminal, which applies the generator head.

The memory is never re-communicated after the encoder finishes — replicated
weights plus the encoder's final All-Gather give every device everything
cross-attention needs, which is what makes the decoder partition free of
extra traffic.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.collectives import all_gather_arrays
from repro.cluster.simulator import ClusterSim
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import LatencyBreakdown
from repro.core import complexity
from repro.core.complexity import EQ3
from repro.core.layer import PartitionedLayerExecutor
from repro.core.partition import PartitionScheme
from repro.models.seq2seq import PartitionedDecoderLayerExecutor, Seq2SeqTransformer
from repro.systems.base import InferenceResult, activation_bytes

__all__ = ["Seq2SeqVoltageSystem"]


class Seq2SeqVoltageSystem:
    """Voltage for encoder–decoder models (see module docstring)."""

    name = "voltage-seq2seq"

    def __init__(
        self,
        model: Seq2SeqTransformer,
        cluster: ClusterSpec,
        scheme: PartitionScheme | None = None,
    ):
        if scheme is not None and scheme.num_devices != cluster.num_devices:
            raise ValueError(
                f"scheme covers {scheme.num_devices} devices, cluster has "
                f"{cluster.num_devices}"
            )
        self.model = model
        self.cluster = cluster
        self.sim = ClusterSim(cluster)
        self.scheme = scheme if scheme is not None else PartitionScheme.even(
            cluster.num_devices
        )
        self.encoder_executors = [PartitionedLayerExecutor(l) for l in model.encoder]
        self.decoder_executors = [PartitionedDecoderLayerExecutor(l) for l in model.decoder]

    @property
    def k(self) -> int:
        return self.cluster.num_devices

    def _distribute_stack(
        self,
        x: np.ndarray,
        latency: LatencyBreakdown,
        stage: str,
        flops_fn,
        forward_fn,
        num_layers: int,
        final_gather_rows: int | None = None,
    ) -> np.ndarray:
        """Shared partition/compute/All-Gather loop for either stack."""
        n, f = x.shape
        parts = self.scheme.positions(n)
        for index in range(num_layers):
            outputs = [forward_fn(index, x, part) for part in parts]
            flops = [flops_fn(index, n, part.length) if part.length else 0 for part in parts]
            latency.add(f"{stage} partition compute", "compute",
                        self.sim.compute_makespan(flops), layer=index)
            chunk_bytes = [activation_bytes(part.length, f) for part in parts]
            last = index + 1 == num_layers
            if last and final_gather_rows is not None:
                # only the needed rows travel to the terminal
                latency.add(f"{stage} send rows to terminal", "comm",
                            self.sim.point_to_point(activation_bytes(final_gather_rows, f)),
                            layer=index)
            else:
                latency.add(f"{stage} all-gather", "comm",
                            self.sim.all_gather(chunk_bytes), layer=index)
            x = all_gather_arrays(outputs)
        return x

    def run(self, raw) -> InferenceResult:
        """``(src_ids, tgt_ids)`` → next-token logits + latency breakdown."""
        src_ids, tgt_ids = raw
        model = self.model
        latency = LatencyBreakdown()
        cfg = model.config
        f = cfg.hidden_size

        src_x = model.src_embeddings(np.asarray(src_ids))
        latency.add("embed source (terminal)", "compute", 0.0)
        latency.add("broadcast source", "comm",
                    self.sim.broadcast(activation_bytes(src_x.shape[0], f)))

        memory = self._distribute_stack(
            src_x, latency, "encoder",
            flops_fn=lambda i, n, p: self.encoder_executors[i].partition_flops(n, p),
            forward_fn=lambda i, x, part: self.encoder_executors[i].forward_partition(x, part),
            num_layers=len(self.encoder_executors),
        )

        tgt_x = model.tgt_embeddings(np.asarray(tgt_ids))
        n_mem = memory.shape[0]
        latency.add("broadcast target prefix", "comm",
                    self.sim.broadcast(activation_bytes(tgt_x.shape[0], f)))

        hidden = self._distribute_stack(
            tgt_x, latency, "decoder",
            flops_fn=lambda i, n, p: self.decoder_executors[i].partition_flops(n, n_mem, p),
            forward_fn=lambda i, x, part: self.decoder_executors[i].forward_partition(
                x, memory, part
            ),
            num_layers=len(self.decoder_executors),
            final_gather_rows=1,
        )

        logits = model.generator(hidden[-1])
        latency.add("generator head (terminal)", "compute",
                    self.sim.terminal_compute(f * cfg.vocab_size))
        return InferenceResult(
            output=logits,
            latency=latency,
            meta={
                "system": self.name,
                "n_src": src_x.shape[0],
                "n_tgt": tgt_x.shape[0],
                "devices": self.k,
            },
        )

    def single_device_latency(self, n_src: int, n_tgt: int) -> float:
        """Reference: the whole model on the first device (for speed-up)."""
        cfg = self.model.config
        attention = self.model.encoder[0].attention
        f, fh, h = cfg.hidden_size, attention.head_dim, attention.num_heads
        encoder = cfg.num_layers * complexity.layer_flops(
            n_src, n_src, f, fh, h, cfg.ffn_dim, order=EQ3
        )
        decoder = sum(
            executor.partition_flops(n_tgt, n_src, n_tgt)
            for executor in self.decoder_executors
        )
        head = f * cfg.vocab_size
        device = self.cluster.devices[0]
        wire = self.sim.point_to_point(activation_bytes(n_src, f))
        return device.compute_seconds(encoder + decoder + head) + 2 * wire
