"""The common interface of all inference systems.

A *system* deploys a :class:`~repro.models.base.TransformerModel` on a
:class:`~repro.cluster.spec.ClusterSpec` and serves single requests
(batch size 1, the edge setting the paper targets).  ``run()`` returns both:

- the **real output**, produced by executing the system's exact distributed
  protocol (host-emulated, bit-faithful to what the devices would compute);
- the **simulated latency** as a per-phase :class:`LatencyBreakdown`, using
  the calibrated device/network cost models.

The split lets the test-suite assert numerical equivalence across systems
while the benchmarks sweep latency over device counts and bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.simulator import ClusterSim
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import LatencyBreakdown
from repro.models.base import TransformerModel
from repro.obs.metrics import get_registry
from repro.obs.tracer import current_tracer

__all__ = ["InferenceResult", "InferenceSystem", "activation_bytes"]


def activation_bytes(n: int, f: int, itemsize: int = 4) -> float:
    """Size of an ``(N, F)`` float32 activation on the wire."""
    return float(n) * f * itemsize


@dataclass
class InferenceResult:
    """Output + latency + metadata for one served request."""

    output: np.ndarray
    latency: LatencyBreakdown
    meta: dict = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        return self.latency.total_seconds


class InferenceSystem:
    """Base class: holds the model, the cluster, and the cost helper."""

    name = "abstract"

    def __init__(self, model: TransformerModel, cluster: ClusterSpec):
        self.model = model
        self.cluster = cluster
        self.sim = ClusterSim(cluster)

    @property
    def k(self) -> int:
        return self.cluster.num_devices

    def run(self, raw) -> InferenceResult:
        """Serve one request end-to-end."""
        raise NotImplementedError

    def latency_seconds(self, raw) -> float:
        """Convenience wrapper for sweeps that only need the scalar."""
        return self.run(raw).total_seconds

    def traced_run(self, raw) -> InferenceResult:
        """:meth:`run` inside a wall-clock request span, with per-system
        request metrics (count + modeled-latency histogram) recorded into
        the default registry.  The phase/sim spans emitted during ``run``
        nest under the request span's timeline in an exported trace."""
        with current_tracer().span(
            f"{self.name}.run", cat="system", kind="request", system=self.name
        ) as span:
            result = self.run(raw)
            span.set(n=result.meta.get("n"), modeled_seconds=result.total_seconds)
        registry = get_registry()
        registry.counter("system.requests_total", system=self.name).inc()
        registry.histogram("system.modeled_latency_seconds", system=self.name).observe(
            result.total_seconds
        )
        return result

    # -- shared terminal-side stages -----------------------------------------

    def _terminal_preprocess(self, raw, latency: LatencyBreakdown) -> np.ndarray:
        x = self.model.preprocess(raw)
        flops = self.model.preprocess_flops(x.shape[0])
        latency.add("preprocess (terminal)", "compute", self.sim.terminal_compute(flops))
        return x

    def _terminal_postprocess(
        self, hidden: np.ndarray, latency: LatencyBreakdown
    ) -> np.ndarray:
        hidden = self.model.final_norm(hidden)
        output = self.model.postprocess(hidden)
        flops = self.model.postprocess_flops(hidden.shape[0])
        latency.add("postprocess (terminal)", "compute", self.sim.terminal_compute(flops))
        return output

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(model={self.model.config.name!r}, "
            f"devices={self.k}, bandwidth={self.cluster.network.bandwidth_mbps:g} Mbps)"
        )
