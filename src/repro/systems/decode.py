"""Distributed autoregressive decode with a position-sharded KV cache.

Extends Voltage's position-partitioned execution (paper Algorithm 2) from a
single forward pass to greedy generation.  The protocol keeps the paper's
data layout — every device owns a contiguous span of sequence positions —
but flips what is *partitioned*:

* **Compute is replicated.** Every rank runs the identical per-token step
  (embeddings, fused QKV, attention, FFN, LM head).  A single new token is
  one row of GEMM work; splitting it would change operand shapes and break
  the bitwise-conformance argument that lets ``repro.verify`` compare
  distributed decode against ``GPT2Model.generate_cached`` with
  ``np.array_equal`` rather than a tolerance.
* **KV storage is sharded.** Each rank's ``LayerKVCache`` holds only the
  rows of K/V whose positions fall inside its span, so per-rank cache
  memory drops to O(L·T/K).  Spans are fixed per request from
  ``scheme_for(capacity, layer)`` over the request's full capacity
  (``min(prompt + max_new, max_positions)``) so a row's owner never moves
  as the sequence grows.
* **Assembly is a lossless all-gather.** Before attention each rank
  gathers every peer's K/V shard rows and concatenates them in rank order,
  reconstructing exactly the array a single-device cache would hold —
  shard spans partition ``[0, capacity)`` contiguously in rank order, so
  clipping each span to the filled prefix ``[0, total)`` and concatenating
  gives ``[0, total)`` bit-exactly.  K/V rows always cross the wire in
  their native dtype regardless of the system's lossy activation
  ``wire_dtype``: a rounded cache row would be re-read on every subsequent
  step and the error would compound, so the decode path never applies the
  forward pass's lossy wire encoding (INTERNALS §13).

Two execution surfaces share the step kernel:

* :func:`generate_distributed` — one-shot SPMD run over a real runtime
  (``ThreadedRuntime`` or ``ProcessRuntime``): every rank decodes the full
  sequence, gathering shards with ``ctx.all_gather``; the host asserts all
  ranks emitted identical tokens.
* :func:`run_decode` — host-side emulation of the same shard/merge
  protocol plus a simulated per-token latency timeline built from the
  decode-phase Γ model (``core.complexity.decode_step_flops``), mirrored
  analytically by ``bench.analytic.voltage_decode_latency``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cluster.runtime import WorkerContext
from repro.cluster.timeline import LatencyBreakdown
from repro.core.complexity import (
    decode_kv_gather_elements,
    decode_step_flops,
    select_decode_order,
    select_order,
)
from repro.core.partition import Partition
from repro.models.cache import (
    LayerKVCache,
    layer_forward_cached_kv,
    merge_kv_shards,
    shard_kv_views,
)
from repro.tensor.workspace import Workspace
from repro.systems.base import InferenceResult

__all__ = [
    "decode_capacity",
    "decode_layer_spans",
    "decode_step_totals",
    "generate_distributed",
    "run_decode",
    "sharded_decode_step",
]

# Token ids travel as int64 (the dtype generate_cached emits); K/V rows
# travel in the model's float32 compute dtype.  Neither is subject to the
# lossy activation wire_dtype — cache rows are re-read every step, so any
# rounding would compound across the whole generation.
_ID_ITEMSIZE = 8
_KV_ITEMSIZE = 4


def decode_capacity(model, prompt_len: int, max_new_tokens: int) -> int:
    """Cache capacity for a request — mirrors ``generate_cached`` exactly."""
    if prompt_len < 1:
        raise ValueError(f"prompt must hold at least one token, got {prompt_len}")
    if max_new_tokens < 0:
        raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
    return min(prompt_len + max_new_tokens, model.config.max_positions)


def decode_layer_spans(system, capacity: int) -> list[list[Partition]]:
    """Per-layer, per-rank position spans, fixed for the request's lifetime.

    Spans are drawn over the *capacity* (not the current length) so the
    owner of any position is a pure function of the request shape: rows
    never migrate between ranks as the sequence grows.
    """
    return [
        system.scheme_for(capacity, layer=index).positions(capacity)
        for index in range(system.model.num_layers)
    ]


def _shard_extend(
    part: Partition,
    shard: LayerKVCache,
    offset: int,
    heads: int,
    head_dim: int,
    gather_kv: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
):
    """Build the ``extend_kv`` hook for one rank's shard of one layer.

    Appends the slice of the new rows that falls inside this rank's span
    (possibly none), then gathers every rank's shard view and returns the
    rank-order concatenation — value-identical to a full single-device
    cache append followed by a read.
    """

    def extend(k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        added = k_new.shape[1]
        lo = max(part.start, offset)
        hi = min(part.stop, offset + added)
        if hi > lo:
            shard.append(
                k_new[:, lo - offset : hi - offset], v_new[:, lo - offset : hi - offset]
            )
        k_shard, v_shard = shard_kv_views(shard, heads, head_dim, k_new.dtype)
        return gather_kv(k_shard, v_shard)

    return extend


def sharded_decode_step(
    model,
    layer_parts: Sequence[Sequence[Partition]],
    shards: Sequence[LayerKVCache],
    rank: int,
    new_ids: Sequence[int],
    offset: int,
    gather_kv: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
    workspace: Workspace | None = None,
) -> int:
    """One rank's view of one decode step; op-for-op ``generate_cached``'s.

    ``shards[i]`` is this rank's KV shard for layer ``i``; ``gather_kv``
    assembles the full K/V from every rank's shard (a collective when run
    under a runtime, a host-side merge in emulation).
    """
    positions = np.arange(offset, offset + len(new_ids))
    x = model.embeddings.word(np.asarray(new_ids, dtype=np.int64))
    x = x + model.embeddings.position(positions)
    heads = model.config.num_heads
    head_dim = model.config.head_dim
    for index, layer in enumerate(model.layers):
        extend = _shard_extend(
            layer_parts[index][rank], shards[index], offset, heads, head_dim, gather_kv
        )
        x = layer_forward_cached_kv(layer, x, extend, offset, workspace=workspace)
    logits = model.ln_f(x[-1]) @ model.embeddings.word.weight.data.T
    return int(np.argmax(logits))


def greedy_loop(
    model, step: Callable[[list[int], int], int], ids: list[int], max_new_tokens: int
) -> list[int]:
    """The exact control flow of ``generate_cached``'s greedy loop."""
    max_positions = model.config.max_positions
    next_id = step(ids, 0)
    for _ in range(max_new_tokens):
        if len(ids) >= max_positions:
            break
        ids.append(next_id)
        if len(ids) >= max_positions:
            break
        next_id = step([ids[-1]], len(ids) - 1)
    return ids


def fresh_shards(layer_parts: Sequence[Sequence[Partition]], rank: int) -> list[LayerKVCache]:
    """One empty KV shard per layer, sized to this rank's span."""
    return [LayerKVCache(capacity=parts[rank].length or None) for parts in layer_parts]


def generate_distributed(
    system, prompt_ids, max_new_tokens: int = 8, runtime=None, timeout=None
):
    """Greedy decode on ``K`` ranks with position-sharded KV storage.

    Every rank runs the replicated token loop, holding only its span of
    each layer's K/V and reassembling the full cache with two lossless
    ``all_gather`` calls per layer per step.  Returns ``(ids, stats)``
    where ``ids`` is bit-identical to ``model.generate_cached(prompt_ids,
    max_new_tokens)`` and ``stats`` is the per-rank ``CommStats`` list.
    """
    from repro.cluster.process_runtime import resolve_runtime

    model = system.model
    ids0 = [int(token) for token in np.asarray(prompt_ids)]
    capacity = decode_capacity(model, len(ids0), max_new_tokens)
    layer_parts = decode_layer_spans(system, capacity)

    def worker(ctx: WorkerContext) -> np.ndarray:
        shards = fresh_shards(layer_parts, ctx.rank)
        workspace = Workspace()

        def gather_kv(k_shard, v_shard):
            return ctx.all_gather(k_shard, axis=1), ctx.all_gather(v_shard, axis=1)

        def step(new_ids, offset):
            return sharded_decode_step(
                model, layer_parts, shards, ctx.rank, new_ids, offset, gather_kv,
                workspace=workspace,
            )

        ids = greedy_loop(model, step, list(ids0), max_new_tokens)
        return np.asarray(ids, dtype=np.int64)

    results, stats = resolve_runtime(runtime, system.k, timeout=timeout).run(worker)
    for rank in range(1, system.k):
        np.testing.assert_array_equal(
            results[rank], results[0],
            err_msg=f"rank {rank} decoded a different sequence than rank 0",
        )
    return results[0], stats


def run_decode(system, prompt_ids, max_new_tokens: int = 8) -> InferenceResult:
    """Host-emulated sharded decode with a simulated per-token timeline.

    Runs the identical shard/append/merge protocol as
    :func:`generate_distributed` (one ``LayerKVCache`` shard per rank per
    layer, rank-order concatenation before attention) in a single process,
    and prices each step with the decode-phase Γ model: a replicated
    compute makespan of ``decode_step_flops`` plus the LM head, and two
    lossless shard all-gathers per layer.  The phase sequence is mirrored
    exactly by ``bench.analytic.voltage_decode_latency``.
    """
    model = system.model
    config = model.config
    sim = system.sim
    k = system.k
    ids0 = [int(token) for token in np.asarray(prompt_ids)]
    capacity = decode_capacity(model, len(ids0), max_new_tokens)
    layer_parts = decode_layer_spans(system, capacity)
    rank_shards = [
        [LayerKVCache(capacity=part.length or None) for part in parts]
        for parts in layer_parts
    ]
    workspace = Workspace()

    latency = LatencyBreakdown()
    latency.add("broadcast prompt", "comm", sim.broadcast(_ID_ITEMSIZE * len(ids0)))

    per_token_seconds: list[float] = []
    uncached_orders: list[str] = []
    gather_bytes_per_device = 0

    def account_step(added: int, total: int) -> None:
        nonlocal gather_bytes_per_device
        flops = decode_step_flops(
            total,
            model.num_layers,
            config.hidden_size,
            config.head_dim,
            config.num_heads,
            config.ffn_dim,
            new_positions=added,
        ) + model.postprocess_flops(total)
        compute_s = sim.compute_makespan([flops] * k)
        comm_s = 0.0
        for parts in layer_parts:
            chunk_bytes = [
                config.num_heads
                * max(0, min(part.stop, total) - max(part.start, 0))
                * config.head_dim
                * _KV_ITEMSIZE
                for part in parts
            ]
            comm_s += sim.all_gather(chunk_bytes)  # K shard rows
            comm_s += sim.all_gather(chunk_bytes)  # V shard rows
            gather_bytes_per_device += 2 * (sum(chunk_bytes) - max(chunk_bytes))
        step_index = len(per_token_seconds)
        latency.add("decode step compute", "compute", compute_s, layer=step_index)
        latency.add("kv shard all-gather", "comm", comm_s, layer=step_index)
        per_token_seconds.append(compute_s + comm_s)
        if added == total:
            order = select_order(total, added, config.hidden_size, config.head_dim)
        else:
            order = select_decode_order(
                total, config.hidden_size, config.head_dim, cached=False
            )
        uncached_orders.append("eq8" if order.is_reordered else "eq3")

    def step(new_ids, offset):
        added = len(new_ids)
        total = offset + added
        positions = np.arange(offset, offset + added)
        x = model.embeddings.word(np.asarray(new_ids, dtype=np.int64))
        x = x + model.embeddings.position(positions)
        for index, layer in enumerate(model.layers):
            parts = layer_parts[index]
            shards = rank_shards[index]

            # The emulation appends to the owning rank's shard for each
            # layer, then merges every shard in rank order — the same
            # values every rank would assemble from a real all-gather.
            def extend(k_new, v_new, parts=parts, shards=shards):
                rows = k_new.shape[1]
                for part, shard in zip(parts, shards):
                    lo = max(part.start, offset)
                    hi = min(part.stop, offset + rows)
                    if hi > lo:
                        shard.append(
                            k_new[:, lo - offset : hi - offset],
                            v_new[:, lo - offset : hi - offset],
                        )
                return merge_kv_shards(shards)

            x = layer_forward_cached_kv(layer, x, extend, offset, workspace=workspace)
        logits = model.ln_f(x[-1]) @ model.embeddings.word.weight.data.T
        account_step(added, total)
        return int(np.argmax(logits))

    ids = greedy_loop(model, step, list(ids0), max_new_tokens)
    output = np.asarray(ids, dtype=np.int64)
    latency.add(
        "gather output to terminal", "comm", sim.point_to_point(_ID_ITEMSIZE * len(ids))
    )

    analytic_elements = model.num_layers * sum(
        decode_kv_gather_elements(total, config.num_heads, config.head_dim, k)
        for total in decode_step_totals(len(ids0), max_new_tokens, config.max_positions)
    )
    meta = {
        "system": "voltage-decode",
        "devices": k,
        "prompt_tokens": len(ids0),
        "tokens": len(ids),
        "capacity": capacity,
        "steps": len(per_token_seconds),
        "per_token_seconds": per_token_seconds,
        "kv_gather_bytes_per_device": int(gather_bytes_per_device),
        "kv_gather_elements_analytic": analytic_elements,
        "cached_order": "eq3",
        "uncached_orders": uncached_orders,
        "shard_spans": [[part.start, part.stop] for part in layer_parts[0]],
    }
    return InferenceResult(output=output, latency=latency, meta=meta)


def decode_step_totals(prompt_len: int, max_new_tokens: int, max_positions: int) -> list[int]:
    """Sequence lengths seen by each decode step — deterministic in shapes.

    Replays ``generate_cached``'s control flow over lengths only: the
    prefill step sees ``prompt_len`` rows; each later step sees one row at
    the post-append length, stopping early at ``max_positions`` exactly
    where the real loop does.
    """
    totals = [prompt_len]
    length = prompt_len
    for _ in range(max_new_tokens):
        if length >= max_positions:
            break
        length += 1
        if length >= max_positions:
            break
        totals.append(length)
    return totals
