"""Distributed autoregressive decode with a position-sharded KV cache.

Extends Voltage's position-partitioned execution (paper Algorithm 2) from a
single forward pass to greedy generation.  The protocol keeps the paper's
data layout — every device owns a contiguous span of sequence positions —
but flips what is *partitioned*:

* **Compute is replicated.** Every rank runs the identical per-token step
  (embeddings, fused QKV, attention, FFN, LM head).  A single new token is
  one row of GEMM work; splitting it would change operand shapes and break
  the bitwise-conformance argument that lets ``repro.verify`` compare
  distributed decode against ``GPT2Model.generate_cached`` with
  ``np.array_equal`` rather than a tolerance.
* **KV storage is sharded.** Each rank's ``LayerKVCache`` holds only the
  rows of K/V whose positions fall inside its span, so per-rank cache
  memory drops to O(L·T/K).  Spans are fixed per request from
  ``scheme_for(capacity, layer)`` over the request's full capacity
  (``min(prompt + max_new, max_positions)``) so a row's owner never moves
  as the sequence grows.
* **Assembly is a lossless all-gather.** Before attention each rank
  gathers every peer's K/V shard rows and concatenates them in rank order,
  reconstructing exactly the array a single-device cache would hold —
  shard spans partition ``[0, capacity)`` contiguously in rank order, so
  clipping each span to the filled prefix ``[0, total)`` and concatenating
  gives ``[0, total)`` bit-exactly.  K/V rows always cross the wire in
  their native dtype regardless of the system's lossy activation
  ``wire_dtype``: a rounded cache row would be re-read on every subsequent
  step and the error would compound, so the decode path never applies the
  forward pass's lossy wire encoding (INTERNALS §13).

That bullet describes ``attention="gathered"`` (PR 7, the lossless
baseline): bit-identical to ``generate_cached`` but replicating all
attention compute and moving ``2(K-1)tHF_H/K`` elements per layer per
step, growing with the sequence.  ``attention="distributed"`` instead
scores the new token only against the local shard and exchanges packed
per-head log-sum-exp stats (``K·H·(F_H+2)`` elements per layer, flat in
t); a deterministic rank-ordered combine (:mod:`repro.core.combine`)
reconstructs exact attention up to float re-association.  Cross-rank
outputs stay bit-identical — every rank combines the same gathered stats
in the same order — so only the comparison against the single device
moves to the verify harness's regime-2 closeness tolerance, and per-rank
score/context FLOPs drop to O(t/K).  See INTERNALS §14.

Two execution surfaces share the step kernel:

* :func:`generate_distributed` — one-shot SPMD run over a real runtime
  (``ThreadedRuntime`` or ``ProcessRuntime``): every rank decodes the full
  sequence, gathering shards with ``ctx.all_gather``; the host asserts all
  ranks emitted identical tokens.
* :func:`run_decode` — host-side emulation of the same shard/merge
  protocol plus a simulated per-token latency timeline built from the
  decode-phase Γ model (``core.complexity.decode_step_flops``), mirrored
  analytically by ``bench.analytic.voltage_decode_latency``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.cluster.runtime import WorkerContext
from repro.cluster.timeline import LatencyBreakdown
from repro.core.combine import (
    combine_softmax_stats,
    local_softmax_stats,
    neutral_softmax_stats,
    pack_softmax_stats,
    unpack_softmax_stats,
)
from repro.core.complexity import (
    DECODE_ATTENTION_MODES,
    decode_comm_elements,
    decode_mode_cost,
    select_decode_order,
    select_order,
)
from repro.core.partition import Partition
from repro.models.cache import (
    LayerKVCache,
    layer_forward_cached_attention,
    layer_forward_cached_kv,
    merge_kv_shards,
    shard_kv_views,
)
from repro.tensor.workspace import Workspace
from repro.systems.base import InferenceResult

__all__ = [
    "decode_capacity",
    "decode_layer_spans",
    "decode_stats_wire",
    "decode_step_pricing",
    "decode_step_totals",
    "generate_distributed",
    "run_decode",
    "sharded_decode_step",
]

# Token ids travel as int64 (the dtype generate_cached emits); K/V rows
# travel in the model's float32 compute dtype.  Neither is subject to the
# lossy activation wire_dtype — cache rows are re-read every step, so any
# rounding would compound across the whole generation.
_ID_ITEMSIZE = 8
_KV_ITEMSIZE = 4


def decode_capacity(model, prompt_len: int, max_new_tokens: int) -> int:
    """Cache capacity for a request — mirrors ``generate_cached`` exactly."""
    if prompt_len < 1:
        raise ValueError(f"prompt must hold at least one token, got {prompt_len}")
    if max_new_tokens < 0:
        raise ValueError(f"max_new_tokens must be >= 0, got {max_new_tokens}")
    return min(prompt_len + max_new_tokens, model.config.max_positions)


def decode_layer_spans(system, capacity: int) -> list[list[Partition]]:
    """Per-layer, per-rank position spans, fixed for the request's lifetime.

    Spans are drawn over the *capacity* (not the current length) so the
    owner of any position is a pure function of the request shape: rows
    never migrate between ranks as the sequence grows.
    """
    return [
        system.scheme_for(capacity, layer=index).positions(capacity)
        for index in range(system.model.num_layers)
    ]


def _shard_extend(
    part: Partition,
    shard: LayerKVCache,
    offset: int,
    heads: int,
    head_dim: int,
    gather_kv: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]],
):
    """Build the ``extend_kv`` hook for one rank's shard of one layer.

    Appends the slice of the new rows that falls inside this rank's span
    (possibly none), then gathers every rank's shard view and returns the
    rank-order concatenation — value-identical to a full single-device
    cache append followed by a read.
    """

    def extend(k_new: np.ndarray, v_new: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        added = k_new.shape[1]
        lo = max(part.start, offset)
        hi = min(part.stop, offset + added)
        if hi > lo:
            shard.append(
                k_new[:, lo - offset : hi - offset], v_new[:, lo - offset : hi - offset]
            )
        k_shard, v_shard = shard_kv_views(shard, heads, head_dim, k_new.dtype)
        return gather_kv(k_shard, v_shard)

    return extend


def decode_stats_wire(wire_dtype: str) -> tuple[np.dtype, int]:
    """``(numpy dtype, itemsize)`` the combine stats cross the wire in.

    ``float16`` systems halve the stats frames too (the rounding error is
    covered by the closeness regime, exactly like activation rounding on
    the forward path); ``int8`` systems keep float32 stats — the affine
    int8 codec is calibrated per channel for activations, not for a
    running-max / normaliser pair whose dynamic range spans the whole
    score distribution.
    """
    if wire_dtype == "float16":
        return np.dtype(np.float16), 2
    return np.dtype(np.float32), 4


def _local_stats_packed(
    q: np.ndarray, part: Partition, shard: LayerKVCache, offset: int,
    heads: int, head_dim: int,
) -> np.ndarray:
    """One rank's packed ``(o, m, l)`` combine stats for its shard.

    A shard with no populated rows yet (trailing span before the sequence
    reaches it, or K > capacity) contributes the combine's neutral element.
    """
    k_shard, v_shard = shard_kv_views(shard, heads, head_dim, q.dtype)
    if k_shard.shape[1]:
        o, m, length = local_softmax_stats(
            q, k_shard, v_shard, shard_start=part.start, query_offset=offset
        )
    else:
        o, m, length = neutral_softmax_stats(
            q.shape[0], q.shape[1], q.shape[2], dtype=q.dtype
        )
    return pack_softmax_stats(o, m, length)


def _shard_attend(
    part: Partition,
    shard: LayerKVCache,
    offset: int,
    heads: int,
    head_dim: int,
    gather_stats: Callable[[np.ndarray], np.ndarray],
):
    """Build the ``attend`` hook for one rank's shard of one layer.

    Appends the slice of the new K/V rows falling inside this rank's span,
    computes partial attention over the *local* shard only, and exchanges
    the packed ``(o, m, l)`` stats — ``gather_stats(packed) -> (K, H, P,
    F_H+2)`` in rank order — before the deterministic rank-ordered
    log-sum-exp combine.  Every rank combines the same gathered stats in
    the same order, so all ranks produce the bit-identical layer output;
    only the comparison against a *single-device* decode needs a tolerance.
    """

    def attend(q: np.ndarray, k_new: np.ndarray, v_new: np.ndarray) -> np.ndarray:
        added = k_new.shape[1]
        lo = max(part.start, offset)
        hi = min(part.stop, offset + added)
        if hi > lo:
            shard.append(
                k_new[:, lo - offset : hi - offset], v_new[:, lo - offset : hi - offset]
            )
        packed = _local_stats_packed(q, part, shard, offset, heads, head_dim)
        gathered = gather_stats(packed)
        return combine_softmax_stats([unpack_softmax_stats(chunk) for chunk in gathered])

    return attend


def sharded_decode_step(
    model,
    layer_parts: Sequence[Sequence[Partition]],
    shards: Sequence[LayerKVCache],
    rank: int,
    new_ids: Sequence[int],
    offset: int,
    gather_kv: Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]] | None,
    workspace: Workspace | None = None,
    attention: str = "gathered",
    gather_stats: Callable[[np.ndarray], np.ndarray] | None = None,
) -> int:
    """One rank's view of one decode step.

    ``shards[i]`` is this rank's KV shard for layer ``i``.  With
    ``attention="gathered"`` the step is op-for-op ``generate_cached``'s:
    ``gather_kv`` assembles the full K/V from every rank's shard (a
    collective under a runtime, a host-side merge in emulation) and the
    outputs are bit-identical to the single device.  With
    ``attention="distributed"`` the rank attends only against its local
    shard and ``gather_stats`` exchanges the packed log-sum-exp combine
    stats — exact up to float re-association (INTERNALS §14).
    """
    if attention not in DECODE_ATTENTION_MODES:
        raise ValueError(
            f"attention must be one of {DECODE_ATTENTION_MODES}, got {attention!r}"
        )
    if attention == "gathered" and gather_kv is None:
        raise ValueError("gathered attention requires a gather_kv collective")
    if attention == "distributed" and gather_stats is None:
        raise ValueError("distributed attention requires a gather_stats collective")
    positions = np.arange(offset, offset + len(new_ids))
    x = model.embeddings.word(np.asarray(new_ids, dtype=np.int64))
    x = x + model.embeddings.position(positions)
    heads = model.config.num_heads
    head_dim = model.config.head_dim
    for index, layer in enumerate(model.layers):
        part = layer_parts[index][rank]
        if attention == "gathered":
            extend = _shard_extend(part, shards[index], offset, heads, head_dim, gather_kv)
            x = layer_forward_cached_kv(layer, x, extend, offset, workspace=workspace)
        else:
            attend = _shard_attend(part, shards[index], offset, heads, head_dim, gather_stats)
            x = layer_forward_cached_attention(layer, x, attend, workspace=workspace)
    logits = model.ln_f(x[-1]) @ model.embeddings.word.weight.data.T
    return int(np.argmax(logits))


def greedy_loop(
    model, step: Callable[[list[int], int], int], ids: list[int], max_new_tokens: int
) -> list[int]:
    """The exact control flow of ``generate_cached``'s greedy loop."""
    max_positions = model.config.max_positions
    next_id = step(ids, 0)
    for _ in range(max_new_tokens):
        if len(ids) >= max_positions:
            break
        ids.append(next_id)
        if len(ids) >= max_positions:
            break
        next_id = step([ids[-1]], len(ids) - 1)
    return ids


def fresh_shards(layer_parts: Sequence[Sequence[Partition]], rank: int) -> list[LayerKVCache]:
    """One empty KV shard per layer, sized to this rank's span."""
    return [LayerKVCache(capacity=parts[rank].length or None) for parts in layer_parts]


def generate_distributed(
    system, prompt_ids, max_new_tokens: int = 8, runtime=None, timeout=None,
    attention: str = "gathered",
):
    """Greedy decode on ``K`` ranks with position-sharded KV storage.

    Every rank runs the replicated token loop, holding only its span of
    each layer's K/V.  With ``attention="gathered"`` each step reassembles
    the full cache with two lossless ``all_gather`` calls per layer and the
    returned ``ids`` are bit-identical to
    ``model.generate_cached(prompt_ids, max_new_tokens)``.  With
    ``attention="distributed"`` each rank attends only against its local
    shard and the ranks exchange one packed stats all-gather per layer —
    per-step wire volume independent of the sequence length, outputs exact
    up to float re-association.  Either way every rank's token sequence is
    bit-identical across ranks (the combine is a deterministic rank-ordered
    reduction), which is asserted before returning ``(ids, stats)``.
    """
    from repro.cluster.process_runtime import resolve_runtime

    if attention not in DECODE_ATTENTION_MODES:
        raise ValueError(
            f"attention must be one of {DECODE_ATTENTION_MODES}, got {attention!r}"
        )
    model = system.model
    ids0 = [int(token) for token in np.asarray(prompt_ids)]
    capacity = decode_capacity(model, len(ids0), max_new_tokens)
    layer_parts = decode_layer_spans(system, capacity)
    stats_dtype, _ = decode_stats_wire(system.wire_dtype)

    def worker(ctx: WorkerContext) -> np.ndarray:
        shards = fresh_shards(layer_parts, ctx.rank)
        workspace = Workspace()

        def gather_kv(k_shard, v_shard):
            return ctx.all_gather(k_shard, axis=1), ctx.all_gather(v_shard, axis=1)

        def gather_stats(packed):
            # stats may round to float16 on the wire; they are *not* re-read
            # on later steps (unlike cache rows), so the error cannot
            # compound — it is a one-shot rounding covered by the closeness
            # tolerance.  The float32 upcast happens after the gather so the
            # combine arithmetic is identical on every rank.
            wire = packed.astype(stats_dtype, copy=False)
            return ctx.all_gather(wire[None], axis=0).astype(np.float32)

        def step(new_ids, offset):
            return sharded_decode_step(
                model, layer_parts, shards, ctx.rank, new_ids, offset, gather_kv,
                workspace=workspace, attention=attention, gather_stats=gather_stats,
            )

        ids = greedy_loop(model, step, list(ids0), max_new_tokens)
        return np.asarray(ids, dtype=np.int64)

    results, stats = resolve_runtime(runtime, system.k, timeout=timeout).run(worker)
    for rank in range(1, system.k):
        np.testing.assert_array_equal(
            results[rank], results[0],
            err_msg=f"rank {rank} decoded a different sequence than rank 0",
        )
    return results[0], stats


def decode_step_pricing(
    config,
    layer_parts: Sequence[Sequence[Partition]],
    added: int,
    total: int,
    attention: str = "gathered",
    stats_itemsize: int = 4,
):
    """Price one decode step — the single cost source shared by
    :func:`run_decode` and ``bench.analytic.voltage_decode_latency``.

    Driven by the per-mode cost table (``core.complexity.DECODE_MODE_COSTS``)
    so neither caller duplicates the formulas.  Returns ``(per_rank_flops,
    layer_collectives, per_device_bytes)``:

    - ``per_rank_flops[r]`` — rank ``r``'s whole-stack matmul FLOPs for the
      step (terminal LM head excluded; callers add it).  Gathered attention
      replicates the full-history step on every rank; distributed attention
      scores only the rank's local shard rows, so heterogeneous spans yield
      heterogeneous per-rank FLOPs.
    - ``layer_collectives[i]`` — the ordered all-gather chunk-byte lists
      layer ``i`` issues: two lossless K/V row gathers when gathered, one
      packed-stats gather when distributed.
    - ``per_device_bytes`` — wire bytes one device receives across all
      layers this step (``sum(chunks) - max(chunks)`` per collective).
    """
    mode = decode_mode_cost(attention)
    k = len(layer_parts[0])
    heads, fh = config.num_heads, config.head_dim
    per_rank_flops = [0] * k
    layer_collectives: list[list[list[int]]] = []
    per_device_bytes = 0
    for parts in layer_parts:
        local_rows = [
            max(0, min(part.stop, total) - max(part.start, 0)) for part in parts
        ]
        for rank in range(k):
            per_rank_flops[rank] += mode.rank_flops(
                total, 1, config.hidden_size, fh, heads, config.ffn_dim,
                new_positions=added, local_rows=local_rows[rank],
            )
        if attention == "gathered":
            chunk_bytes = [heads * rows * fh * _KV_ITEMSIZE for rows in local_rows]
            layer_collectives.append([chunk_bytes, chunk_bytes])  # K rows, V rows
            per_device_bytes += 2 * (sum(chunk_bytes) - max(chunk_bytes))
        else:
            chunk = heads * added * (fh + 2) * stats_itemsize
            chunk_bytes = [chunk] * k
            layer_collectives.append([chunk_bytes])
            per_device_bytes += sum(chunk_bytes) - max(chunk_bytes)
    return per_rank_flops, layer_collectives, per_device_bytes


def run_decode(
    system, prompt_ids, max_new_tokens: int = 8, attention: str = "gathered"
) -> InferenceResult:
    """Host-emulated sharded decode with a simulated per-token timeline.

    Runs the identical shard/append protocol as
    :func:`generate_distributed` (one ``LayerKVCache`` shard per rank per
    layer; rank-order K/V concatenation when gathered, per-shard local
    stats plus the rank-ordered log-sum-exp combine when distributed —
    including the wire-dtype round trip, so the emulated tokens are
    bit-identical to the runtime's) in a single process, pricing each step
    through :func:`decode_step_pricing`.  The phase sequence is mirrored
    exactly by ``bench.analytic.voltage_decode_latency``.
    """
    if attention not in DECODE_ATTENTION_MODES:
        raise ValueError(
            f"attention must be one of {DECODE_ATTENTION_MODES}, got {attention!r}"
        )
    model = system.model
    config = model.config
    sim = system.sim
    k = system.k
    heads, head_dim = config.num_heads, config.head_dim
    ids0 = [int(token) for token in np.asarray(prompt_ids)]
    capacity = decode_capacity(model, len(ids0), max_new_tokens)
    layer_parts = decode_layer_spans(system, capacity)
    rank_shards = [
        [LayerKVCache(capacity=part.length or None) for part in parts]
        for parts in layer_parts
    ]
    workspace = Workspace()
    stats_dtype, stats_itemsize = decode_stats_wire(system.wire_dtype)
    comm_phase = (
        "kv shard all-gather" if attention == "gathered" else "combine stats all-gather"
    )

    latency = LatencyBreakdown()
    latency.add("broadcast prompt", "comm", sim.broadcast(_ID_ITEMSIZE * len(ids0)))

    per_token_seconds: list[float] = []
    uncached_orders: list[str] = []
    per_step_comm_bytes: list[int] = []
    kv_gather_bytes = 0
    combine_bytes = 0
    final_logits: np.ndarray | None = None
    final_logits_prefix = 0

    def account_step(added: int, total: int) -> None:
        nonlocal kv_gather_bytes, combine_bytes
        per_rank_flops, layer_collectives, step_bytes = decode_step_pricing(
            config, layer_parts, added, total,
            attention=attention, stats_itemsize=stats_itemsize,
        )
        post_flops = model.postprocess_flops(total)
        compute_s = sim.compute_makespan([flops + post_flops for flops in per_rank_flops])
        comm_s = 0.0
        for collectives in layer_collectives:
            for chunk_bytes in collectives:
                comm_s += sim.all_gather(chunk_bytes)
        if attention == "gathered":
            kv_gather_bytes += step_bytes
        else:
            combine_bytes += step_bytes
        per_step_comm_bytes.append(step_bytes)
        step_index = len(per_token_seconds)
        latency.add("decode step compute", "compute", compute_s, layer=step_index)
        latency.add(comm_phase, "comm", comm_s, layer=step_index)
        per_token_seconds.append(compute_s + comm_s)
        if added == total:
            order = select_order(total, added, config.hidden_size, config.head_dim)
        else:
            order = select_decode_order(
                total, config.hidden_size, config.head_dim, cached=False
            )
        uncached_orders.append("eq8" if order.is_reordered else "eq3")

    def step(new_ids, offset):
        nonlocal final_logits, final_logits_prefix
        added = len(new_ids)
        total = offset + added
        positions = np.arange(offset, offset + added)
        x = model.embeddings.word(np.asarray(new_ids, dtype=np.int64))
        x = x + model.embeddings.position(positions)
        for index, layer in enumerate(model.layers):
            parts = layer_parts[index]
            shards = rank_shards[index]

            # The emulation appends to the owning rank's shard for each
            # layer, then merges every shard in rank order — the same
            # values every rank would assemble from a real all-gather.
            def extend(k_new, v_new, parts=parts, shards=shards):
                rows = k_new.shape[1]
                for part, shard in zip(parts, shards):
                    lo = max(part.start, offset)
                    hi = min(part.stop, offset + rows)
                    if hi > lo:
                        shard.append(
                            k_new[:, lo - offset : hi - offset],
                            v_new[:, lo - offset : hi - offset],
                        )
                return merge_kv_shards(shards)

            # Distributed attention: append as above, then compute every
            # rank's local stats, round-trip them through the wire dtype
            # (exactly as the runtime's stats all-gather does) and run the
            # rank-ordered combine every rank runs.
            def attend(q, k_new, v_new, parts=parts, shards=shards):
                rows = k_new.shape[1]
                for part, shard in zip(parts, shards):
                    lo = max(part.start, offset)
                    hi = min(part.stop, offset + rows)
                    if hi > lo:
                        shard.append(
                            k_new[:, lo - offset : hi - offset],
                            v_new[:, lo - offset : hi - offset],
                        )
                gathered = [
                    _local_stats_packed(q, part, shard, offset, heads, head_dim)
                    .astype(stats_dtype, copy=False)
                    .astype(np.float32)
                    for part, shard in zip(parts, shards)
                ]
                return combine_softmax_stats(
                    [unpack_softmax_stats(chunk) for chunk in gathered]
                )

            if attention == "gathered":
                x = layer_forward_cached_kv(layer, x, extend, offset, workspace=workspace)
            else:
                x = layer_forward_cached_attention(layer, x, attend, workspace=workspace)
        logits = model.ln_f(x[-1]) @ model.embeddings.word.weight.data.T
        final_logits, final_logits_prefix = logits, total
        account_step(added, total)
        return int(np.argmax(logits))

    ids = greedy_loop(model, step, list(ids0), max_new_tokens)
    output = np.asarray(ids, dtype=np.int64)
    latency.add(
        "gather output to terminal", "comm", sim.point_to_point(_ID_ITEMSIZE * len(ids))
    )

    totals = decode_step_totals(len(ids0), max_new_tokens, config.max_positions)
    addeds = [len(ids0)] + [1] * (len(totals) - 1)
    if attention == "gathered":
        kv_elements = model.num_layers * sum(
            decode_comm_elements("gathered", total, heads, head_dim, k)
            for total in totals
        )
        combine_elements = 0
    else:
        kv_elements = 0
        combine_elements = model.num_layers * sum(
            decode_comm_elements(
                "distributed", total, heads, head_dim, k, new_positions=added
            )
            for total, added in zip(totals, addeds)
        )
    meta = {
        "system": "voltage-decode",
        "devices": k,
        "decode_attention": attention,
        "prompt_tokens": len(ids0),
        "tokens": len(ids),
        "capacity": capacity,
        "steps": len(per_token_seconds),
        "per_token_seconds": per_token_seconds,
        "kv_gather_bytes_per_device": int(kv_gather_bytes),
        "combine_bytes_per_device": int(combine_bytes),
        "per_step_comm_bytes_per_device": per_step_comm_bytes,
        "kv_gather_elements_analytic": kv_elements,
        "combine_elements_analytic": combine_elements,
        "cached_order": "eq3",
        "uncached_orders": uncached_orders,
        "shard_spans": [[part.start, part.stop] for part in layer_parts[0]],
        "final_logits": final_logits,
        "final_logits_prefix": final_logits_prefix,
    }
    return InferenceResult(output=output, latency=latency, meta=meta)


def decode_step_totals(prompt_len: int, max_new_tokens: int, max_positions: int) -> list[int]:
    """Sequence lengths seen by each decode step — deterministic in shapes.

    Replays ``generate_cached``'s control flow over lengths only: the
    prefill step sees ``prompt_len`` rows; each later step sees one row at
    the post-append length, stopping early at ``max_positions`` exactly
    where the real loop does.
    """
    totals = [prompt_len]
    length = prompt_len
    for _ in range(max_new_tokens):
        if length >= max_positions:
            break
        length += 1
        if length >= max_positions:
            break
        totals.append(length)
    return totals
