"""Adaptive Voltage: per-layer dynamic partition schemes under speed drift.

Implements the extension the paper flags in Section V-B ("dynamically
adjusting partition schemes for each layer during the runtime without any
penalty"): device speeds vary over time (a :class:`SpeedTrace`), and the
system re-partitions every layer based on online speed estimates.

Three scheduling modes, compared by the ``ablation_dynamic`` benchmark:

- ``static``  — the paper's evaluation setting: a fixed even 1/K split;
- ``dynamic`` — closed-loop: EWMA speed estimation from observed layer
  times, makespan-optimal re-planning each layer (realisable in practice);
- ``oracle``  — re-plans with the *true* current speeds (the lower bound a
  dynamic policy can approach).

Re-partitioning really is penalty-free: every device already holds the full
layer input after the All-Gather, so changing who computes what requires no
extra data movement — only the partition boundaries change.
"""

from __future__ import annotations

from repro.cluster.collectives import all_gather_arrays
from repro.cluster.dynamics import SpeedTrace, constant_trace
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import LatencyBreakdown
from repro.core.layer import OrderPolicy, PartitionedLayerExecutor
from repro.core.partition import PartitionScheme
from repro.core.planner import makespan_optimal_scheme
from repro.core.schedule import DynamicPlanner
from repro.models.base import TransformerModel
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["AdaptiveVoltageSystem"]

_MODES = ("static", "dynamic", "oracle")


class AdaptiveVoltageSystem(InferenceSystem):
    """Voltage with per-layer scheme adaptation under time-varying speeds."""

    name = "voltage-adaptive"

    def __init__(
        self,
        model: TransformerModel,
        cluster: ClusterSpec,
        trace: SpeedTrace | None = None,
        mode: str = "dynamic",
        policy: OrderPolicy | None = None,
        ewma_alpha: float = 0.6,
    ):
        super().__init__(model, cluster)
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.trace = trace if trace is not None else constant_trace(cluster.num_devices)
        if self.trace.num_devices != cluster.num_devices:
            raise ValueError(
                f"trace covers {self.trace.num_devices} devices, cluster has "
                f"{cluster.num_devices}"
            )
        self.mode = mode
        self.policy = policy if policy is not None else OrderPolicy()
        self.ewma_alpha = ewma_alpha
        self.executors = [
            PartitionedLayerExecutor(layer, policy=self.policy) for layer in model.layers
        ]

    def _device_seconds(self, layer: int, flops: list[float]) -> list[float]:
        """Per-device wall time at this layer's effective speeds."""
        speeds = self.trace.effective_gflops(layer, self.cluster.device_gflops)
        seconds = []
        for device, speed, work in zip(self.cluster.devices, speeds, flops):
            if work == 0:
                seconds.append(0.0)
            else:
                seconds.append(work / (speed * 1e9) + device.overhead_seconds)
        return seconds

    def _scheme_for_layer(
        self, layer: int, n: int, planner: DynamicPlanner | None
    ) -> PartitionScheme:
        if self.mode == "static":
            return PartitionScheme.even(self.k)
        if self.mode == "oracle":
            true_speeds = self.trace.effective_gflops(layer, self.cluster.device_gflops)
            return makespan_optimal_scheme(
                self.model.config, n, true_speeds, policy=self.policy
            )
        assert planner is not None
        return planner.plan(n)

    def run(self, raw) -> InferenceResult:
        latency = LatencyBreakdown()
        x = self._terminal_preprocess(raw, latency)
        n, f = x.shape

        latency.add("broadcast input", "comm", self.sim.broadcast(activation_bytes(n, f)))

        planner = (
            DynamicPlanner(
                self.model.config,
                self.cluster.device_gflops,
                policy=self.policy,
                alpha=self.ewma_alpha,
            )
            if self.mode == "dynamic"
            else None
        )

        schemes_used: list[tuple[float, ...]] = []
        for index, executor in enumerate(self.executors):
            scheme = self._scheme_for_layer(index, n, planner)
            schemes_used.append(scheme.ratios)
            parts = scheme.positions(n)
            outputs = [executor.forward_partition(x, part) for part in parts]
            flops = [
                executor.partition_flops(n, part.length) if part.length else 0
                for part in parts
            ]
            seconds = self._device_seconds(index, flops)
            latency.add("partition compute", "compute", max(seconds), layer=index)
            if planner is not None:
                planner.observe_layer(n, scheme, seconds)

            chunk_bytes = [activation_bytes(part.length, f) for part in parts]
            if index + 1 < len(self.executors):
                latency.add("all-gather", "comm", self.sim.all_gather(chunk_bytes), layer=index)
            else:
                latency.add(
                    "gather to terminal", "comm", self.sim.gather(chunk_bytes), layer=index
                )
            x = all_gather_arrays(outputs)

        output = self._terminal_postprocess(x, latency)
        return InferenceResult(
            output=output,
            latency=latency,
            meta={
                "system": self.name,
                "mode": self.mode,
                "n": n,
                "devices": self.k,
                "schemes": schemes_used,
                "speed_estimates": planner.estimator.estimates if planner else None,
            },
        )
