"""Fault-tolerant Voltage: surviving device failures mid-inference.

A consequence of Voltage's design the paper doesn't exploit: after every
All-Gather each device holds the *complete* layer input, and every device
holds the *complete* model weights (Section V-C).  So when a device dies,
nothing is lost — the survivors simply re-partition the remaining layers
among themselves and keep going, paying only a detection timeout.

Contrast with tensor parallelism, where each device holds an irreplaceable
weight shard: losing one device loses part of the model, and inference
cannot continue without re-distributing weights from a checkpoint.

Failures are injected as a schedule ``{device_index: layer_index}`` —
device ``d`` dies immediately before computing layer ``l``.  The output is
bit-identical to the failure-free run; only the latency changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.collectives import all_gather_arrays
from repro.cluster.spec import ClusterSpec
from repro.cluster.timeline import LatencyBreakdown
from repro.core.layer import OrderPolicy, PartitionedLayerExecutor
from repro.core.partition import PartitionScheme
from repro.models.base import TransformerModel
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["AllDevicesFailedError", "FailureSchedule", "FaultTolerantVoltageSystem"]


class AllDevicesFailedError(RuntimeError):
    """Every computing device died before the request finished."""


@dataclass(frozen=True)
class FailureSchedule:
    """Which devices die, and before which layer."""

    failures: dict = field(default_factory=dict)  # device index -> layer index

    def __post_init__(self) -> None:
        for device, layer in self.failures.items():
            if device < 0 or layer < 0:
                raise ValueError(f"invalid failure entry: device {device}, layer {layer}")

    def validate(self, num_devices: int, num_layers: int) -> None:
        """Reject entries that cannot occur on the given deployment.

        A ``fail_layer >= num_layers`` entry would never match any layer's
        ``dying_at`` check, silently leaving that device alive for the whole
        request — an injected failure that tests *think* they exercised but
        never happened.
        """
        for device, layer in self.failures.items():
            if device >= num_devices:
                raise ValueError(
                    f"failure names device {device}, cluster has {num_devices}"
                )
            if layer >= num_layers:
                raise ValueError(
                    f"failure for device {device} at layer {layer} can never fire: "
                    f"model has only {num_layers} layers"
                )

    def dead_before(self, layer: int) -> set:
        """Devices that failed at an earlier layer (strictly before ``layer``)."""
        return {d for d, fail_layer in self.failures.items() if fail_layer < layer}

    def dying_at(self, layer: int) -> set:
        return {d for d, fail_layer in self.failures.items() if fail_layer == layer}


def _survivor_scheme(alive: list[int], k: int) -> PartitionScheme:
    """Even split over survivors, zero ratio for dead devices."""
    ratios = [0.0] * k
    share = 1.0 / len(alive)
    for device in alive:
        ratios[device] = share
    return PartitionScheme(ratios)


class FaultTolerantVoltageSystem(InferenceSystem):
    """Voltage with failure detection and survivor re-partitioning."""

    name = "voltage-fault-tolerant"

    def __init__(
        self,
        model: TransformerModel,
        cluster: ClusterSpec,
        failures: FailureSchedule | dict | None = None,
        detection_timeout_seconds: float = 0.2,
        policy: OrderPolicy | None = None,
    ):
        super().__init__(model, cluster)
        if isinstance(failures, dict):
            failures = FailureSchedule(failures)
        self.failures = failures if failures is not None else FailureSchedule()
        self.failures.validate(self.k, len(model.layers))
        if detection_timeout_seconds < 0:
            raise ValueError("detection timeout must be >= 0")
        self.detection_timeout_seconds = detection_timeout_seconds
        self.policy = policy if policy is not None else OrderPolicy()
        self.executors = [
            PartitionedLayerExecutor(layer, policy=self.policy) for layer in model.layers
        ]

    def run(self, raw) -> InferenceResult:
        latency = LatencyBreakdown()
        x = self._terminal_preprocess(raw, latency)
        n, f = x.shape

        latency.add("broadcast input", "comm", self.sim.broadcast(activation_bytes(n, f)))

        events = []
        for index, executor in enumerate(self.executors):
            dying = self.failures.dying_at(index)
            dead = self.failures.dead_before(index) | dying
            alive = [d for d in range(self.k) if d not in dead]
            if dying:
                # survivors notice the missing peer at the barrier: one
                # detection timeout per failure event (not per device)
                latency.add(
                    f"detect failure of device(s) {sorted(dying)}",
                    "overhead",
                    self.detection_timeout_seconds,
                    layer=index,
                )
                events.append({"layer": index, "devices": sorted(dying)})
            if not alive:
                raise AllDevicesFailedError(
                    f"no devices left at layer {index} "
                    f"(failures: {self.failures.failures})"
                )

            scheme = _survivor_scheme(alive, self.k)
            parts = scheme.positions(n)
            outputs = [executor.forward_partition(x, part) for part in parts]
            seconds = [
                (
                    self.cluster.devices[d].compute_seconds(
                        executor.partition_flops(n, parts[d].length)
                    )
                    if parts[d].length
                    else 0.0
                )
                for d in range(self.k)
            ]
            latency.add("partition compute", "compute", max(seconds), layer=index)

            chunk_bytes = [activation_bytes(part.length, f) for part in parts]
            live_chunks = [chunk_bytes[d] for d in alive]
            if index + 1 < len(self.executors):
                latency.add("all-gather", "comm", self.sim.all_gather(live_chunks), layer=index)
            else:
                latency.add("gather to terminal", "comm", self.sim.gather(live_chunks), layer=index)
            x = all_gather_arrays(outputs)

        output = self._terminal_postprocess(x, latency)
        survivors = [d for d in range(self.k)
                     if d not in self.failures.dead_before(len(self.executors))]
        return InferenceResult(
            output=output,
            latency=latency,
            meta={
                "system": self.name,
                "n": n,
                "devices": self.k,
                "failure_events": events,
                "survivors": survivors,
            },
        )
