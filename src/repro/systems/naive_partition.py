"""Naive position partitioning — Voltage without computation reordering.

This is the "Naive" baseline of Fig. 6: the workload is still partitioned by
position, but every device always computes the attention via Eq. (3), i.e.
it materialises the full K and V matrices regardless of how small its
partition is.  Theorem 1 shows the resulting per-device cost has the
constant term ``2·N·F·F_H`` that caps its speed-up.
"""

from __future__ import annotations

from repro.cluster.spec import ClusterSpec
from repro.core.layer import OrderPolicy
from repro.core.partition import PartitionScheme
from repro.models.base import TransformerModel
from repro.systems.voltage import VoltageSystem

__all__ = ["NaivePartitionSystem"]


class NaivePartitionSystem(VoltageSystem):
    """Position partitioning with the computation order fixed to Eq. (3)."""

    name = "naive-partition"

    def __init__(
        self,
        model: TransformerModel,
        cluster: ClusterSpec,
        scheme: PartitionScheme | str | None = None,
    ):
        super().__init__(model, cluster, scheme=scheme, policy=OrderPolicy("naive"))
