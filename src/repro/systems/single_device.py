"""Single-device deployment — the paper's primary baseline.

The terminal pre-processes the request, ships the input features to one
computing device, which runs the whole transformer stack and returns the
final hidden states for post-processing (the dashed orange line of Fig. 5).
"""

from __future__ import annotations

from repro.cluster.timeline import LatencyBreakdown
from repro.core.layer import PartitionedLayerExecutor
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes

__all__ = ["SingleDeviceSystem"]


class SingleDeviceSystem(InferenceSystem):
    """Runs every layer on the first device of the cluster."""

    name = "single-device"

    def run(self, raw) -> InferenceResult:
        latency = LatencyBreakdown()
        x = self._terminal_preprocess(raw, latency)
        n, f = x.shape
        wire = activation_bytes(n, f)

        latency.add("ship input to device", "comm", self.sim.point_to_point(wire))

        device = self.cluster.devices[0]
        for index, layer in enumerate(self.model.layers):
            flops = PartitionedLayerExecutor(layer).full_flops(n)
            latency.add("layer compute", "compute", device.compute_seconds(flops), layer=index)
            x = layer(x)

        latency.add("return hidden to terminal", "comm", self.sim.point_to_point(wire))
        output = self._terminal_postprocess(x, latency)
        return InferenceResult(
            output=output,
            latency=latency,
            meta={"system": self.name, "n": n, "devices": 1},
        )
