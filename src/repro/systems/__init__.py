"""End-to-end inference systems sharing one interface.

- :class:`SingleDeviceSystem` — the paper's baseline deployment;
- :class:`VoltageSystem` — Algorithm 2 (position partition + All-Gather);
- :class:`NaivePartitionSystem` — position partition, fixed Eq. (3) order;
- :class:`TensorParallelSystem` — Megatron-style sharding, 2 All-Reduces;
- :class:`PipelineParallelSystem` — layer staging (throughput-oriented).
"""

from repro.systems.adaptive import AdaptiveVoltageSystem
from repro.systems.base import InferenceResult, InferenceSystem, activation_bytes
from repro.systems.data_parallel import BatchResult, DataParallelSystem
from repro.systems.decode import generate_distributed, run_decode
from repro.systems.fault_tolerant import (
    AllDevicesFailedError,
    FailureSchedule,
    FaultTolerantVoltageSystem,
)
from repro.systems.naive_partition import NaivePartitionSystem
from repro.systems.pipeline_parallel import PipelineParallelSystem, StreamReport
from repro.systems.seq2seq import Seq2SeqVoltageSystem
from repro.systems.single_device import SingleDeviceSystem
from repro.systems.tensor_parallel import TensorParallelSystem
from repro.systems.voltage import VoltageSystem

SYSTEMS = {
    SingleDeviceSystem.name: SingleDeviceSystem,
    VoltageSystem.name: VoltageSystem,
    AdaptiveVoltageSystem.name: AdaptiveVoltageSystem,
    NaivePartitionSystem.name: NaivePartitionSystem,
    TensorParallelSystem.name: TensorParallelSystem,
    PipelineParallelSystem.name: PipelineParallelSystem,
    DataParallelSystem.name: DataParallelSystem,
    FaultTolerantVoltageSystem.name: FaultTolerantVoltageSystem,
}

__all__ = [
    "SYSTEMS",
    "AdaptiveVoltageSystem",
    "AllDevicesFailedError",
    "FailureSchedule",
    "FaultTolerantVoltageSystem",
    "BatchResult",
    "DataParallelSystem",
    "InferenceResult",
    "InferenceSystem",
    "NaivePartitionSystem",
    "PipelineParallelSystem",
    "Seq2SeqVoltageSystem",
    "SingleDeviceSystem",
    "StreamReport",
    "TensorParallelSystem",
    "VoltageSystem",
    "activation_bytes",
    "generate_distributed",
    "run_decode",
]
