"""A process-backed runtime over real loopback TCP sockets.

The paper's evaluation runs Voltage on six separate VMs over a real network;
:class:`~repro.cluster.runtime.ThreadedRuntime` emulates that with threads
sharing one GIL and an in-process ``queue.Queue`` wire.  This module provides
the deployment-shaped alternative: :class:`ProcessRuntime` runs each rank as a
real OS process, every frame crosses a loopback TCP socket in the
:mod:`repro.cluster.wire` encoding, and each rank has its own interpreter —
NumPy/BLAS compute is genuinely multi-core.

It honours the exact same :class:`~repro.cluster.runtime.WorkerContext`
contract (send/recv, barrier, all_gather/all_reduce, ring + async variants
returning :class:`~repro.cluster.runtime.CollectiveHandle`): the subclass
only overrides the frame-transport hooks (``_put_frame`` / ``_get_frame``)
and the three slot-based collectives, which become wire collectives
(ring all-gather, ring all-reduce, point-to-point broadcast).  Everything
above those hooks — ring step order, summation order, chunk streaming — is
the *same code*, which is what makes thread-vs-process bit-identity a
checkable property rather than a hope.

Bootstrap: the parent binds one loopback listener per rank *before* forking
(so the port list is plain inherited state, no port-exchange race), forks one
worker process per rank, and each rank full-mesh connects — dialling every
lower rank with a 4-byte hello carrying its own rank, accepting every higher
rank.  Results, per-rank :class:`CommStats`, and exceptions come back over
per-child pipes; a dead child or a wedged cluster fails loudly with the
originating rank's error rather than hanging.

Socket envelope (little-endian), wrapping every wire frame::

    0  4  body length (tag + frame bytes)     uint32
    4  2  tag length                          uint16
    6  .  tag key (ascii JSON)                — channel demultiplexing
    .  .  the repro.cluster.wire frame

The tag key replicates the threaded runtime's tagged mailboxes: a per-peer
reader thread demultiplexes incoming frames into per-(peer, tag) queues so an
async collective's comm thread can never consume a frame meant for the main
thread's ``recv`` (or for another in-flight collective).  Byte counters
include the envelope — they measure what actually traversed the socket.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import queue
import socket
import struct
import threading
import time
import traceback
from collections.abc import Callable, Sequence

import numpy as np

from repro.cluster.runtime import (
    _RING_FRAME_KIND,
    DEFAULT_TIMEOUT,
    CommStats,
    RuntimeError_,
    ThreadedRuntime,
    WorkerContext,
)

__all__ = [
    "ProcessRuntime",
    "ProcessWorkerContext",
    "resolve_runtime",
    "envelope_overhead_bytes",
]

#: Envelope header: body length (uint32), tag length (uint16).
_ENVELOPE = struct.Struct("<IH")
#: 4-byte hello sent by the dialling side of each mesh connection.
_HELLO = struct.Struct("<I")
#: Seconds between liveness checks while a receive or the parent collector waits.
_POLL_INTERVAL = 0.25
#: Extra grace the parent allows beyond ``timeout`` before declaring a child hung.
_COLLECT_GRACE = 5.0


def _tag_key(tag) -> str:
    """Canonical string form of a mailbox tag (tuples and None included)."""
    return json.dumps(tag, separators=(",", ":"))


def envelope_overhead_bytes(tag) -> int:
    """Socket bytes added around one wire frame sent under ``tag``."""
    return _ENVELOPE.size + len(_tag_key(tag).encode("ascii"))


def _recv_exact(sock: socket.socket, n: int) -> bytes | None:
    """Read exactly ``n`` bytes; ``None`` on clean EOF at a message boundary."""
    buf = bytearray()
    while len(buf) < n:
        chunk = sock.recv(n - len(buf))
        if not chunk:
            if not buf:
                return None
            raise ConnectionError(f"socket closed mid-message ({len(buf)}/{n} bytes)")
        buf += chunk
    return bytes(buf)


class _SocketTransport:
    """Full-mesh socket fabric for one rank: locked sends, demuxed receives."""

    def __init__(self, rank: int, world_size: int, socks: dict[int, socket.socket]):
        self.rank = rank
        self.world_size = world_size
        self._socks = socks
        self._send_locks = {peer: threading.Lock() for peer in socks}
        self._queues: dict[tuple[int, str], queue.Queue] = {}
        self._queues_lock = threading.Lock()
        self._closed = {peer: False for peer in socks}
        self._readers = [
            threading.Thread(
                target=self._reader, args=(peer, sock),
                name=f"sock-reader-{rank}<-{peer}", daemon=True,
            )
            for peer, sock in socks.items()
        ]
        for reader in self._readers:
            reader.start()

    def queue_for(self, src: int, tagkey: str) -> queue.Queue:
        with self._queues_lock:
            key = (src, tagkey)
            if key not in self._queues:
                self._queues[key] = queue.Queue()
            return self._queues[key]

    def peer_closed(self, src: int) -> bool:
        return self._closed.get(src, False)

    def send(self, dst: int, tag, frame: bytes) -> int:
        """Write one enveloped frame to ``dst``; return socket bytes written."""
        tag_bytes = _tag_key(tag).encode("ascii")
        envelope = _ENVELOPE.pack(len(tag_bytes) + len(frame), len(tag_bytes))
        try:
            with self._send_locks[dst]:
                self._socks[dst].sendall(envelope + tag_bytes + frame)
        except OSError as exc:
            raise ConnectionError(
                f"rank {self.rank} failed sending to rank {dst}: {exc}"
            ) from exc
        return len(envelope) + len(tag_bytes) + len(frame)

    def _reader(self, peer: int, sock: socket.socket) -> None:
        # One thread per peer: reads envelopes off the socket and demuxes
        # them into per-(peer, tag) queues.  Exits on EOF (peer finished or
        # died) or when close() shuts the socket down under it; either way
        # the closed flag is set *after* the final put, so a receiver that
        # sees closed-and-empty knows nothing more is coming.
        try:
            while True:
                header = _recv_exact(sock, _ENVELOPE.size)
                if header is None:
                    break
                body_len, tag_len = _ENVELOPE.unpack(header)
                body = _recv_exact(sock, body_len)
                if body is None:
                    raise ConnectionError("socket closed between header and body")
                tagkey = body[:tag_len].decode("ascii")
                self.queue_for(peer, tagkey).put(
                    (body[tag_len:], _ENVELOPE.size + body_len)
                )
        except OSError:
            pass  # surfaced to receivers via the closed flag below
        finally:
            self._closed[peer] = True

    def close(self) -> None:
        for sock in self._socks.values():
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass
        for reader in self._readers:
            reader.join(timeout=1.0)


def _connect_mesh(
    rank: int, listener: socket.socket, ports: Sequence[int], timeout: float
) -> _SocketTransport:
    """Full-mesh connect: dial lower ranks, accept higher ranks."""
    k = len(ports)
    socks: dict[int, socket.socket] = {}
    for peer in range(rank):
        sock = socket.create_connection(("127.0.0.1", ports[peer]), timeout=timeout)
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.sendall(_HELLO.pack(rank))
        socks[peer] = sock
    listener.settimeout(timeout)
    for _ in range(k - 1 - rank):
        try:
            sock, _addr = listener.accept()
        except TimeoutError:
            raise ConnectionError(
                f"rank {rank} timed out after {timeout}s waiting for mesh "
                f"connections ({k - 1 - rank - len([p for p in socks if p > rank])} "
                f"higher ranks never dialled)"
            ) from None
        sock.settimeout(None)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        hello = _recv_exact(sock, _HELLO.size)
        if hello is None:
            raise ConnectionError(f"rank {rank}: peer closed during hello")
        (peer,) = _HELLO.unpack(hello)
        socks[peer] = sock
    listener.close()
    return _SocketTransport(rank, k, socks)


class ProcessWorkerContext(WorkerContext):
    """:class:`WorkerContext` whose wire is a real socket mesh.

    Overrides only the frame-transport hooks and the three slot-based
    collectives (which have no shared memory to use here); the ring and
    async collectives, p2p framing, stats locking, and buffer pooling are
    inherited unchanged — that shared body is the conformance argument.
    """

    def __init__(self, rank: int, transport: _SocketTransport, timeout: float):
        super().__init__(rank, shared=None, timeout=timeout)
        self._transport = transport
        self._barrier_sequence = 0

    @property
    def world_size(self) -> int:  # _shared is None here
        return self._transport.world_size

    # -- frame transport over sockets -----------------------------------------

    def _put_frame(self, dst: int, tag, frame: bytes) -> int:
        return self._transport.send(dst, tag, frame)

    def _get_frame(self, src: int, tag, timeout: float, context: str) -> tuple[bytes, int]:
        q = self._transport.queue_for(src, _tag_key(tag))
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            # poll in short slices so a dead peer fails in ~_POLL_INTERVAL,
            # not after the full protocol timeout
            try:
                return q.get(timeout=min(_POLL_INTERVAL, max(remaining, 0.01)))
            except queue.Empty:
                if self._transport.peer_closed(src) and q.empty():
                    raise RuntimeError_(
                        self.rank,
                        ConnectionError(
                            f"rank {self.rank} lost the connection to rank {src} "
                            f"{context}"
                        ),
                    ) from None
                if time.monotonic() >= deadline:
                    raise RuntimeError_(
                        self.rank,
                        TimeoutError(
                            f"rank {self.rank} timed out after {timeout}s {context}"
                        ),
                    ) from None

    # -- collectives (wire versions of the slot-based trio) --------------------

    def barrier(self) -> None:
        """Centralised barrier: rank 0 gathers a token from every rank, then
        releases every rank.  2(K-1) tiny frames total; counted as real
        socket bytes like everything else."""
        from repro.cluster.wire import encode_frame

        k = self.world_size
        if k == 1:
            return
        self._barrier_sequence += 1
        tag = ("barrier", self._barrier_sequence)
        token = encode_frame(
            np.empty(0, dtype=np.uint8),
            kind=_RING_FRAME_KIND,
            sender=self.rank,
            sequence=self._barrier_sequence % 2**32,
        )
        if self.rank == 0:
            for src in range(1, k):
                _, nbytes = self._get_frame(
                    src, tag, self._timeout,
                    context=f"in barrier, waiting on rank {src}",
                )
                self._add_stats(bytes_received=nbytes)
            for dst in range(1, k):
                self._add_stats(bytes_sent=self._put_frame(dst, tag, token))
        else:
            self._add_stats(bytes_sent=self._put_frame(0, tag, token))
            _, nbytes = self._get_frame(
                0, tag, self._timeout, context="in barrier, waiting on rank 0 release"
            )
            self._add_stats(bytes_received=nbytes)

    def all_gather(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Ring all-gather over the sockets — bit-identical to the threaded
        slot collective (chunks concatenate in rank order either way)."""
        return self.ring_all_gather(array, axis=axis)

    def all_reduce(self, array: np.ndarray) -> np.ndarray:
        """Ring all-reduce (reduce-scatter + all-gather) over the sockets.

        Partials are summed in rank order per element — the same
        deterministic order as the threaded accumulate — so results are
        bit-identical across backends.
        """
        if array.ndim == 0:
            return self.all_reduce_async(array.reshape(1)).wait().reshape(())
        return self.all_reduce_async(array).wait()

    def broadcast(self, array: np.ndarray | None = None, root: int = 0) -> np.ndarray:
        """Root sends its frame to every peer; non-roots decode a private,
        writable copy (``decode_frame`` guarantees writability)."""
        from repro.cluster.wire import decode_frame, encode_frame

        tag = self._collective_tag("broadcast")
        with self._span("broadcast") as span:
            if self.rank == root:
                if array is None:
                    raise ValueError("broadcast root must supply an array")
                frame = encode_frame(
                    array, kind=_RING_FRAME_KIND, sender=self.rank, sequence=0
                )
                sent = 0
                for dst in range(self.world_size):
                    if dst != root:
                        sent += self._put_frame(dst, tag, frame)
                self._add_stats(bytes_sent=sent, collective_calls=1)
                span.set(nbytes=sent)
                return array
            data, nbytes = self._get_frame(
                root, tag, self._timeout,
                context=f"in broadcast, waiting on root rank {root}",
            )
            payload = decode_frame(data).payload
            self._add_stats(
                bytes_received=nbytes, collective_calls=1, bytes_copied=payload.nbytes
            )
            span.set(nbytes=nbytes)
            return payload


def _worker_main(
    rank: int,
    worker_fn: Callable[[WorkerContext], object],
    listeners: Sequence[socket.socket],
    ports: Sequence[int],
    parent_conns: Sequence,
    child_conns: Sequence,
    timeout: float,
) -> None:
    """Child-process entry point (fork start method: closures survive).

    First closes every inherited FD this rank must not hold — other ranks'
    listeners and every pipe end but its own — so peer EOF detection works
    (a forgotten inherited write end would keep a dead peer's pipe "open").
    """
    conn = child_conns[rank]
    for i, other in enumerate(child_conns):
        if i != rank:
            other.close()
    for other in parent_conns:
        other.close()
    for i, listener in enumerate(listeners):
        if i != rank:
            listener.close()
    transport = None
    try:
        transport = _connect_mesh(rank, listeners[rank], ports, timeout)
        ctx = ProcessWorkerContext(rank, transport, timeout)
        result = worker_fn(ctx)
        ctx._join_comm_threads()
        if ctx._comm_errors:
            raise ctx._comm_errors[0]
        try:
            conn.send(("ok", result, ctx.stats))
        except Exception as exc:  # unpicklable result — report, don't hang
            conn.send(
                ("err", rank, f"worker result not picklable: {exc!r}", "")
            )
    except BaseException as exc:  # noqa: BLE001 - everything must reach the parent
        origin = exc.rank if isinstance(exc, RuntimeError_) else rank
        cause = exc.cause if isinstance(exc, RuntimeError_) else exc
        try:
            conn.send(("err", origin, repr(cause), traceback.format_exc()))
        except Exception:
            pass  # parent sees EOF and reports a dead child
    finally:
        if transport is not None:
            transport.close()
        conn.close()


class ProcessRuntime:
    """Run one worker process per rank over loopback TCP and collect results.

    Drop-in alternative to :class:`ThreadedRuntime`: ``run(worker_fn)``
    returns the same ``(results, stats)`` pair, raises the same
    :class:`RuntimeError_` carrying the *originating* rank on failure, and
    feeds the same process-wide metrics registry.  Requires the ``fork``
    start method (the default worker functions are closures over live model
    objects, which ``spawn`` cannot pickle).
    """

    def __init__(
        self,
        world_size: int,
        timeout: float = DEFAULT_TIMEOUT,
        start_method: str = "fork",
    ):
        if world_size < 1:
            raise ValueError(f"world size must be >= 1, got {world_size}")
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
        if start_method not in multiprocessing.get_all_start_methods():
            raise ValueError(
                f"start method {start_method!r} unavailable on this platform "
                f"(have {multiprocessing.get_all_start_methods()})"
            )
        self.world_size = world_size
        self.timeout = timeout
        self.start_method = start_method

    def run(
        self, worker_fn: Callable[[WorkerContext], object]
    ) -> tuple[list[object], list[CommStats]]:
        """Execute ``worker_fn(ctx)`` on every rank; returns (results, stats)."""
        k = self.world_size
        mp = multiprocessing.get_context(self.start_method)
        # Every listener and pipe is created BEFORE the first fork so the
        # port list is plain inherited state (no exchange protocol) and each
        # child can close exactly the FDs it must not hold.
        listeners = []
        for _ in range(k):
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.bind(("127.0.0.1", 0))
            listener.listen(k)
            listeners.append(listener)
        ports = [listener.getsockname()[1] for listener in listeners]
        pipes = [mp.Pipe(duplex=False) for _ in range(k)]
        parent_conns = [recv for recv, _send in pipes]
        child_conns = [send for _recv, send in pipes]
        processes = [
            mp.Process(
                target=_worker_main,
                args=(rank, worker_fn, listeners, ports, parent_conns, child_conns,
                      self.timeout),
                name=f"rank-{rank}",
                daemon=True,
            )
            for rank in range(k)
        ]
        for process in processes:
            process.start()
        for listener in listeners:
            listener.close()
        for conn in child_conns:
            conn.close()
        try:
            results, stats, errors = self._collect(parent_conns, processes)
        finally:
            self._reap(processes)
            for conn in parent_conns:
                conn.close()
        if errors:
            raise errors[0]
        ThreadedRuntime._record_metrics(stats)
        return results, stats

    def _collect(self, parent_conns, processes):
        """Drain every child pipe; first error *received* is the root cause.

        A child that dies without reporting (hard crash, ``os._exit``)
        surfaces immediately as a ``ChildProcessError`` with its exit code;
        a child that stops making progress for ``timeout`` + grace is
        declared hung rather than waited on forever.
        """
        k = len(parent_conns)
        results: list[object] = [None] * k
        stats: list[CommStats] = [CommStats() for _ in range(k)]
        errors: list[RuntimeError_] = []
        pending = {conn: rank for rank, conn in enumerate(parent_conns)}
        last_progress = time.monotonic()
        while pending:
            ready = multiprocessing.connection.wait(
                list(pending), timeout=_POLL_INTERVAL
            )
            if not ready:
                if time.monotonic() - last_progress > self.timeout + _COLLECT_GRACE:
                    for conn, rank in pending.items():
                        errors.append(RuntimeError_(
                            rank,
                            TimeoutError(
                                f"rank {rank} made no progress for "
                                f"{self.timeout + _COLLECT_GRACE:.0f}s — declared hung"
                            ),
                        ))
                    break
                continue
            last_progress = time.monotonic()
            for conn in ready:
                rank = pending.pop(conn)
                try:
                    message = conn.recv()
                except (EOFError, OSError):
                    processes[rank].join(timeout=1.0)
                    code = processes[rank].exitcode
                    errors.append(RuntimeError_(
                        rank,
                        ChildProcessError(
                            f"rank {rank} died without reporting (exit code {code})"
                        ),
                    ))
                    continue
                if message[0] == "ok":
                    _, results[rank], stats[rank] = message
                else:
                    _, origin, cause_repr, tb = message
                    cause = RuntimeError(cause_repr)
                    error = RuntimeError_(origin, cause)
                    error.remote_traceback = tb
                    errors.append(error)
        return results, stats, errors

    @staticmethod
    def _reap(processes) -> None:
        for process in processes:
            process.join(timeout=0.5)
            if process.is_alive():
                process.terminate()
                process.join(timeout=2.0)

    def run_spmd(
        self, worker_fns: Sequence[Callable[[WorkerContext], object]]
    ) -> tuple[list[object], list[CommStats]]:
        """Like :meth:`run` but with a distinct function per rank."""
        if len(worker_fns) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} worker functions, got {len(worker_fns)}"
            )
        return self.run(lambda ctx: worker_fns[ctx.rank](ctx))


def resolve_runtime(
    spec, world_size: int, timeout: float | None = None
) -> ThreadedRuntime | ProcessRuntime:
    """Turn a runtime selector into a runtime instance.

    ``spec`` may be ``None`` / ``"threaded"`` (thread backend),
    ``"process"`` (socket backend), or an already-built runtime whose
    ``world_size`` must match.
    """
    kwargs = {} if timeout is None else {"timeout": timeout}
    if spec is None or spec == "threaded":
        return ThreadedRuntime(world_size, **kwargs)
    if spec == "process":
        return ProcessRuntime(world_size, **kwargs)
    if isinstance(spec, (ThreadedRuntime, ProcessRuntime)):
        if spec.world_size != world_size:
            raise ValueError(
                f"runtime world_size {spec.world_size} != required {world_size}"
            )
        return spec
    raise ValueError(
        f"unknown runtime {spec!r} (expected 'threaded', 'process', or a runtime)"
    )
