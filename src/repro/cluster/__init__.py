"""Simulated multi-device edge cluster.

Substitutes the paper's six-VM Compute-Canada testbed (see DESIGN.md):

- :mod:`repro.cluster.device` — per-device compute model + host calibration;
- :mod:`repro.cluster.network` — α–β bandwidth/latency link model;
- :mod:`repro.cluster.collectives` — All-Gather / All-Reduce / broadcast
  cost models and the matching array operations;
- :mod:`repro.cluster.spec` — cluster construction (homogeneous /
  heterogeneous, bandwidth sweeps);
- :mod:`repro.cluster.simulator` — bulk-synchronous cost helpers plus a
  discrete-event engine for pipelined protocols;
- :mod:`repro.cluster.timeline` — per-phase latency breakdowns;
- :mod:`repro.cluster.runtime` — thread-backed real execution with byte
  accounting, proving protocol correctness;
- :mod:`repro.cluster.process_runtime` — process-backed execution over real
  loopback TCP sockets, the paper's deployment shape.
"""

from repro.cluster.device import PAPER_EDGE_DEVICE_GFLOPS, DeviceSpec, calibrate_matmul_gflops
from repro.cluster.network import NetworkSpec
from repro.cluster.process_runtime import ProcessRuntime, ProcessWorkerContext, resolve_runtime
from repro.cluster.runtime import CommStats, ThreadedRuntime, WorkerContext
from repro.cluster.dynamics import SpeedTrace, constant_trace, random_walk_trace, spike_trace
from repro.cluster.simulator import ClusterSim, EventEngine, Resource
from repro.cluster.topology import HeterogeneousNetwork, comm_aware_scheme
from repro.cluster.wire import Frame, decode_frame, encode_frame
from repro.cluster.spec import ClusterSpec, paper_cluster
from repro.cluster.timeline import LatencyBreakdown, Phase

__all__ = [
    "Frame",
    "HeterogeneousNetwork",
    "PAPER_EDGE_DEVICE_GFLOPS",
    "SpeedTrace",
    "comm_aware_scheme",
    "constant_trace",
    "decode_frame",
    "encode_frame",
    "random_walk_trace",
    "spike_trace",
    "ClusterSim",
    "ClusterSpec",
    "CommStats",
    "DeviceSpec",
    "EventEngine",
    "LatencyBreakdown",
    "NetworkSpec",
    "Phase",
    "ProcessRuntime",
    "ProcessWorkerContext",
    "Resource",
    "ThreadedRuntime",
    "WorkerContext",
    "calibrate_matmul_gflops",
    "paper_cluster",
    "resolve_runtime",
]
