"""Heterogeneous network topology: per-device NIC bandwidths.

The paper caps every VM at the same rate; real edge clusters mix radios
(a phone on Wi-Fi next to a desktop on Ethernet).  This module models
per-device NIC bandwidths and computes collective times *exactly* for the
ring All-Gather — step by step, tracking which chunk crosses which link —
instead of assuming a uniform link rate.

Key consequence, exploited by :func:`comm_aware_scheme`: in a ring
All-Gather every chunk crosses every link (including the slow ones), so the
total is governed by the *largest* chunk per step — skewed partitions hurt
communication even when they help compute.  Joint optimisation therefore
pulls a compute-proportional plan back toward even chunks exactly as much
as the compute/communication balance warrants.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence

import numpy as np

__all__ = [
    "HeterogeneousNetwork",
    "ring_all_gather_seconds_exact",
    "comm_aware_scheme",
]


@dataclass(frozen=True)
class HeterogeneousNetwork:
    """Per-device NIC rates plus shared latency/efficiency parameters.

    ``device_bandwidth_mbps[i]`` is device ``i``'s NIC rate; a transfer
    from ``i`` to ``j`` runs at ``min`` of the two NICs (the standard
    bottleneck model).  The terminal uses ``terminal_bandwidth_mbps``.
    """

    device_bandwidth_mbps: tuple[float, ...]
    latency_seconds: float = 4e-3
    efficiency: float = 0.55
    terminal_bandwidth_mbps: float = 500.0

    def __post_init__(self) -> None:
        if not self.device_bandwidth_mbps:
            raise ValueError("need at least one device bandwidth")
        if any(b <= 0 for b in self.device_bandwidth_mbps):
            raise ValueError(f"bandwidths must be positive: {self.device_bandwidth_mbps}")
        if self.terminal_bandwidth_mbps <= 0:
            raise ValueError("terminal bandwidth must be positive")
        if not (0 < self.efficiency <= 1):
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.latency_seconds < 0:
            raise ValueError("latency must be >= 0")

    @property
    def num_devices(self) -> int:
        return len(self.device_bandwidth_mbps)

    def _bps(self, mbps: float) -> float:
        return mbps * 1e6 / 8.0 * self.efficiency

    def link_bytes_per_second(self, src: int, dst: int) -> float:
        """Achievable rate from device ``src`` to device ``dst``."""
        k = self.num_devices
        if not (0 <= src < k and 0 <= dst < k) or src == dst:
            raise ValueError(f"invalid link ({src}, {dst}) for {k} devices")
        return self._bps(
            min(self.device_bandwidth_mbps[src], self.device_bandwidth_mbps[dst])
        )

    def terminal_link_bytes_per_second(self, device: int) -> float:
        if not (0 <= device < self.num_devices):
            raise ValueError(f"invalid device {device}")
        return self._bps(
            min(self.terminal_bandwidth_mbps, self.device_bandwidth_mbps[device])
        )

    def slowest_bytes_per_second(self) -> float:
        return self._bps(min(self.device_bandwidth_mbps))


def ring_all_gather_seconds_exact(
    network: HeterogeneousNetwork, chunk_bytes: Sequence[float]
) -> float:
    """Exact ring All-Gather time on heterogeneous links.

    Devices form the ring ``0 → 1 → … → K-1 → 0``.  At step ``s`` device
    ``i`` forwards the chunk that originated at device ``(i - s) mod K``;
    the step completes when the slowest (link, chunk) pair finishes.  For
    uniform links and chunks this reduces to the homogeneous formula
    ``(K-1)·(α + chunk/β)`` (asserted by the tests).
    """
    k = network.num_devices
    if len(chunk_bytes) != k:
        raise ValueError(f"expected {k} chunks, got {len(chunk_bytes)}")
    if k == 1:
        return 0.0
    total = 0.0
    for step in range(k - 1):
        step_time = 0.0
        for device in range(k):
            source_chunk = chunk_bytes[(device - step) % k]
            rate = network.link_bytes_per_second(device, (device + 1) % k)
            step_time = max(
                step_time, network.latency_seconds + source_chunk / rate
            )
        total += step_time
    return total


def comm_aware_scheme(
    config,
    n: int,
    device_gflops: Sequence[float],
    network: HeterogeneousNetwork,
    policy=None,
):
    """Jointly optimise compute makespan + All-Gather time over ratios.

    Continuous relaxation solved with SciPy's SLSQP (simplex constraint),
    then rounded back to integer position counts.  The objective is one
    layer's critical path:

        max_i compute_i(p_i)  +  ring_all_gather(p · F · 4 bytes)

    In comm-dominated regimes this de-skews compute-proportional plans
    (the ring time tracks the largest chunk); in compute-dominated regimes
    it reproduces them.  Falls back to the compute-only makespan scheme if
    the solver fails to improve on it.
    """
    from scipy import optimize

    from repro.core.layer import OrderPolicy
    from repro.core.partition import PartitionScheme
    from repro.core.planner import device_layer_flops, makespan_optimal_scheme

    policy = policy if policy is not None else OrderPolicy()
    k = len(device_gflops)
    if network.num_devices != k:
        raise ValueError(f"network covers {network.num_devices} devices, got {k} speeds")
    if k == 1:
        return PartitionScheme.single()
    f = config.hidden_size

    def layer_time(ratios: np.ndarray) -> float:
        lengths = np.maximum(ratios, 0.0) * n
        compute = max(
            device_layer_flops(config, n, max(1, int(round(p)))) / (g * 1e9)
            if p > 0.5 else 0.0
            for p, g in zip(lengths, device_gflops)
        )
        chunks = [p * f * 4 for p in lengths]
        return compute + ring_all_gather_seconds_exact(network, chunks)

    baseline = makespan_optimal_scheme(config, n, list(device_gflops), policy=policy)
    start = np.array(baseline.ratios)
    result = optimize.minimize(
        layer_time,
        start,
        method="SLSQP",
        bounds=[(0.0, 1.0)] * k,
        constraints=[{"type": "eq", "fun": lambda r: float(np.sum(r) - 1.0)}],
        options={"maxiter": 200, "ftol": 1e-10},
    )
    candidate_ratios = result.x if result.success else start
    # round to integer position counts that sum to n
    lengths = np.floor(np.maximum(candidate_ratios, 0.0) * n).astype(int)
    remainder = n - int(lengths.sum())
    fractional = candidate_ratios * n - lengths
    for index in np.argsort(fractional)[::-1][:remainder]:
        lengths[index] += 1
    if lengths.sum() != n:  # pathological rounding — fall back
        return baseline
    candidate = PartitionScheme([length / n for length in lengths])

    def scheme_time(scheme: PartitionScheme) -> float:
        parts = scheme.positions(n)
        compute = max(
            (device_layer_flops(config, n, part.length) / (g * 1e9)) if part.length else 0.0
            for part, g in zip(parts, device_gflops)
        )
        chunks = [part.length * f * 4 for part in parts]
        return compute + ring_all_gather_seconds_exact(network, chunks)

    return candidate if scheme_time(candidate) <= scheme_time(baseline) else baseline
