"""Latency simulation for distributed inference protocols.

Two layers of machinery:

- :class:`ClusterSim` — bulk-synchronous helpers matching the structure of
  Algorithm 2 (and of tensor parallelism): per-layer *compute makespan*
  (the slowest device gates the All-Gather) followed by collective time.
  This is exact for barrier-style protocols, which is what both Voltage and
  tensor-parallel inference are.

- :class:`EventEngine` / :class:`Resource` — a small discrete-event core
  for protocols that are *not* bulk-synchronous (pipeline parallelism's
  staggered microbatches), where devices and links are serially-reusable
  resources.
"""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable, Sequence

from repro.cluster import collectives
from repro.cluster.spec import ClusterSpec
from repro.obs.tracer import current_tracer

__all__ = ["ClusterSim", "Resource", "EventEngine"]


class ClusterSim:
    """Cost helpers for bulk-synchronous protocols on a :class:`ClusterSpec`.

    Every call is mirrored into the active tracer (cat ``"sim"``, modeled
    time, byte annotations) so a traced run shows the simulator's view of
    the protocol alongside the request's critical-path phases.
    """

    def __init__(self, cluster: ClusterSpec):
        self.cluster = cluster

    @property
    def k(self) -> int:
        return self.cluster.num_devices

    def _record(
        self,
        name: str,
        kind: str,
        seconds: float,
        nbytes: float | None = None,
        **annotations,
    ) -> float:
        current_tracer().record_modeled(
            name, cat="sim", kind=kind, seconds=seconds, track="simulator", nbytes=nbytes,
            **annotations,
        )
        return seconds

    # -- compute -------------------------------------------------------------

    def compute_makespan(self, flops_per_device: Sequence[float]) -> float:
        """Barrier compute time: every device must finish before the collective."""
        if len(flops_per_device) != self.k:
            raise ValueError(
                f"expected {self.k} per-device FLOP counts, got {len(flops_per_device)}"
            )
        seconds = max(
            device.compute_seconds(flops)
            for device, flops in zip(self.cluster.devices, flops_per_device)
        )
        return self._record("compute_makespan", "compute", seconds)

    def terminal_compute(self, flops: float) -> float:
        seconds = self.cluster.terminal_device.compute_seconds(flops)
        return self._record("terminal_compute", "compute", seconds)

    # -- collectives ---------------------------------------------------------

    def all_gather(self, chunk_bytes: Sequence[float]) -> float:
        seconds = collectives.all_gather_seconds(self.cluster.network, chunk_bytes)
        return self._record("all_gather", "comm", seconds, nbytes=sum(chunk_bytes))

    def all_gather_overlapped(
        self, chunk_bytes: Sequence[float], hideable_seconds: float
    ) -> tuple[float, float]:
        """All-gather with ``hideable_seconds`` of concurrent compute available.

        Returns ``(exposed, full)``: the full ring time and the part of it
        left on the critical path after overlapping —
        ``exposed = max(0, full - hideable)``.  ``hideable_seconds`` is the
        *minimum over devices* of the compute each can run while its ring is
        in flight (next-layer own-partition Q projection), which makes the
        exposed figure a conservative bound on the true overlapped makespan:
        ``max_d(max(comm - hide_d, 0)) <= max(comm - min_d hide_d, 0)`` when
        comm dominates, and the barrier structure absorbs the rest.
        """
        if hideable_seconds < 0:
            raise ValueError(f"hideable compute must be >= 0, got {hideable_seconds}")
        full = collectives.all_gather_seconds(self.cluster.network, chunk_bytes)
        exposed = max(0.0, full - hideable_seconds)
        self._record(
            "all_gather_overlapped", "comm", exposed,
            nbytes=sum(chunk_bytes), hidden_s=full - exposed,
        )
        return exposed, full

    def all_reduce(self, total_bytes: float) -> float:
        seconds = collectives.all_reduce_seconds(self.cluster.network, total_bytes, self.k)
        return self._record("all_reduce", "comm", seconds, nbytes=total_bytes)

    def broadcast(self, nbytes: float) -> float:
        seconds = collectives.broadcast_seconds(self.cluster.network, nbytes, self.k)
        return self._record("broadcast", "comm", seconds, nbytes=nbytes)

    def gather(self, chunk_bytes: Sequence[float]) -> float:
        seconds = collectives.gather_seconds(self.cluster.network, chunk_bytes)
        return self._record("gather", "comm", seconds, nbytes=sum(chunk_bytes))

    def point_to_point(self, nbytes: float) -> float:
        seconds = self.cluster.network.transfer_seconds(nbytes)
        return self._record("point_to_point", "comm", seconds, nbytes=nbytes)


class Resource:
    """A serially-reusable simulated resource (device core or network link)."""

    def __init__(self, name: str):
        self.name = name
        self.available_at = 0.0

    def reserve(self, earliest_start: float, duration: float) -> tuple[float, float]:
        """Occupy the resource for ``duration`` at the first feasible time.

        Returns ``(begin, end)``; subsequent reservations cannot begin before
        ``end`` (FIFO discipline, which is how a single CPU core or a TCP
        stream behaves).
        """
        if duration < 0:
            raise ValueError(f"duration must be >= 0, got {duration}")
        begin = max(earliest_start, self.available_at)
        end = begin + duration
        self.available_at = end
        return begin, end


class EventEngine:
    """A minimal discrete-event loop: schedule callbacks at absolute times."""

    def __init__(self) -> None:
        self.now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._counter = itertools.count()

    def at(self, time: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run at absolute time ``time``."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past: {time} < now={self.now}")
        heapq.heappush(self._queue, (time, next(self._counter), callback))

    def after(self, delay: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        self.at(self.now + delay, callback)

    def run(self, max_events: int = 1_000_000) -> float:
        """Drain the queue; returns the time of the last event."""
        events = 0
        while self._queue:
            events += 1
            if events > max_events:
                raise RuntimeError(f"event budget exceeded ({max_events}); likely a cycle")
            time, _, callback = heapq.heappop(self._queue)
            self.now = time
            callback()
        return self.now
