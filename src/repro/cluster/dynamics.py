"""Runtime device dynamics: time-varying effective speeds.

Real edge devices do not hold a constant throughput — thermal throttling,
background apps and DVFS make speed drift over time.  The paper's Section
V-B observes that Voltage can re-partition *every layer* for free (each
device holds the full input after the All-Gather) and leaves dynamic schemes
to future work; this module provides the workload half of that extension:
deterministic, seeded per-layer speed traces that the adaptive system in
:mod:`repro.systems.adaptive` reacts to.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SpeedTrace", "constant_trace", "random_walk_trace", "spike_trace"]


@dataclass(frozen=True)
class SpeedTrace:
    """Per-device multiplicative speed factors indexed by computation step.

    ``factors[t][d]`` scales device ``d``'s nominal GFLOP/s at step ``t``
    (for layer-synchronous protocols, one step per transformer layer).
    Steps beyond the trace length repeat the last row, so a trace can be
    shorter than the model is deep.
    """

    factors: tuple[tuple[float, ...], ...]

    def __post_init__(self) -> None:
        if not self.factors:
            raise ValueError("trace needs at least one step")
        width = len(self.factors[0])
        for t, row in enumerate(self.factors):
            if len(row) != width:
                raise ValueError(f"step {t} has {len(row)} devices, expected {width}")
            if any(f <= 0 for f in row):
                raise ValueError(f"speed factors must be positive, got {row} at step {t}")

    @property
    def num_devices(self) -> int:
        return len(self.factors[0])

    @property
    def num_steps(self) -> int:
        return len(self.factors)

    def at(self, step: int) -> tuple[float, ...]:
        """Factors for ``step``, clamping past the end of the trace."""
        if step < 0:
            raise ValueError(f"step must be >= 0, got {step}")
        return self.factors[min(step, len(self.factors) - 1)]

    def effective_gflops(self, step: int, nominal: list[float]) -> list[float]:
        """Apply the step's factors to nominal device speeds."""
        row = self.at(step)
        if len(nominal) != len(row):
            raise ValueError(
                f"trace covers {len(row)} devices, got {len(nominal)} nominal speeds"
            )
        return [g * f for g, f in zip(nominal, row)]


def constant_trace(num_devices: int, num_steps: int = 1) -> SpeedTrace:
    """No dynamics: every device at nominal speed forever."""
    return SpeedTrace(tuple(tuple(1.0 for _ in range(num_devices)) for _ in range(num_steps)))


def random_walk_trace(
    num_devices: int,
    num_steps: int,
    volatility: float = 0.08,
    floor: float = 0.3,
    ceiling: float = 1.0,
    seed: int = 0,
) -> SpeedTrace:
    """Geometric random-walk drift, clipped to [floor, ceiling].

    Models slow background-load drift: each step multiplies each device's
    factor by ``exp(N(0, volatility))``.
    """
    if not (0 < floor <= ceiling):
        raise ValueError(f"need 0 < floor <= ceiling, got {floor}, {ceiling}")
    rng = np.random.default_rng(seed)
    current = np.full(num_devices, (floor + ceiling) / 2)
    rows = []
    for _ in range(num_steps):
        current = np.clip(current * np.exp(rng.normal(0, volatility, num_devices)),
                          floor, ceiling)
        rows.append(tuple(float(f) for f in current))
    return SpeedTrace(tuple(rows))


def spike_trace(
    num_devices: int,
    num_steps: int,
    victim: int = 0,
    spike_start: int = 0,
    spike_length: int | None = None,
    slowdown: float = 4.0,
) -> SpeedTrace:
    """One device suddenly slows by ``slowdown``× for a window of steps.

    Models a foreground app stealing the victim device's CPU — the scenario
    where a static even split stalls the whole barrier on the straggler.
    """
    if not (0 <= victim < num_devices):
        raise ValueError(f"victim {victim} out of range for {num_devices} devices")
    if slowdown < 1:
        raise ValueError(f"slowdown must be >= 1, got {slowdown}")
    spike_length = spike_length if spike_length is not None else num_steps - spike_start
    rows = []
    for step in range(num_steps):
        row = [1.0] * num_devices
        if spike_start <= step < spike_start + spike_length:
            row[victim] = 1.0 / slowdown
        rows.append(tuple(row))
    return SpeedTrace(tuple(rows))
