"""Edge device compute model and calibration.

The paper's testbed is six Compute-Canada VMs with one vCPU each running
PyTorch CPU inference.  We model a device by its *effective dense-matmul
throughput* in GFLOP/s — for CPU transformer inference, matmul time is the
overwhelming cost (the paper's own Γ(·) analysis counts only matmuls) — and
provide a micro-benchmark to calibrate that number on the host machine so
simulated latencies land in a realistic absolute range.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

__all__ = ["DeviceSpec", "calibrate_matmul_gflops", "PAPER_EDGE_DEVICE_GFLOPS"]

#: Effective throughput that reproduces the paper's absolute latencies
#: (BERT-Large, N=200, single device ≈ 2.4 s on a 1-vCPU VM).
PAPER_EDGE_DEVICE_GFLOPS = 26.0


@dataclass(frozen=True)
class DeviceSpec:
    """One computing device: a name and an effective matmul throughput.

    ``overhead_seconds`` models fixed per-layer framework overhead (kernel
    launch, Python dispatch) — small but it keeps tiny-partition compute
    times from going unrealistically to zero.
    """

    name: str
    gflops: float
    overhead_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.gflops <= 0:
            raise ValueError(f"device throughput must be positive, got {self.gflops}")
        if self.overhead_seconds < 0:
            raise ValueError(f"overhead must be >= 0, got {self.overhead_seconds}")

    def compute_seconds(self, flops: float) -> float:
        """Time to execute ``flops`` floating point operations."""
        if flops < 0:
            raise ValueError(f"flops must be >= 0, got {flops}")
        if flops == 0:
            return 0.0
        return flops / (self.gflops * 1e9) + self.overhead_seconds


def calibrate_matmul_gflops(size: int = 384, repeats: int = 5) -> float:
    """Measure the host's effective float32 matmul throughput (GFLOP/s).

    Used by the benchmark harness so that *measured* wall-clock numbers
    (Fig. 6) and *simulated* latencies (Figs. 4–5) share a consistent
    compute-speed scale on whatever machine runs the reproduction.
    """
    rng = np.random.default_rng(0)
    a = rng.normal(size=(size, size)).astype(np.float32)
    b = rng.normal(size=(size, size)).astype(np.float32)
    a @ b  # warm-up
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        a @ b
        best = min(best, time.perf_counter() - start)
    return (size**3) / best / 1e9
