"""Wire format: framed binary serialisation of tensors for device channels.

The paper's communication accounting assumes activations cross the network
as raw float32 payloads.  This module makes that concrete: a fixed binary
header (magic, version, kind, sender, sequence number, dtype, shape)
followed by the C-contiguous array bytes.  The threaded runtime's
point-to-point path sends *encoded frames*, so its byte counters measure
what would really cross a socket — payload plus framing overhead.

Format (little-endian):

    0   4  magic  b"VLTG"
    4   1  version (currently 1)
    5   1  kind    (application-defined small int)
    6   2  sender rank        (uint16)
    8   4  sequence number    (uint32)
    12  8  dtype string, NUL-padded (e.g. b"<f4")
    20  1  ndim               (uint8)
    21  .  ndim × uint32 dims
    .   .  raw array bytes
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

import numpy as np

__all__ = ["WireError", "Frame", "encode_frame", "decode_frame", "frame_overhead_bytes"]

_MAGIC = b"VLTG"
_VERSION = 1
_HEADER = struct.Struct("<4sBBHI8sB")
_DIM = struct.Struct("<I")
_MAX_NDIM = 8


class WireError(ValueError):
    """Malformed or unsupported frame."""


@dataclass(frozen=True)
class Frame:
    """A decoded message: routing metadata + tensor payload."""

    kind: int
    sender: int
    sequence: int
    payload: np.ndarray

    @property
    def nbytes(self) -> int:
        """Total wire size of this frame when encoded."""
        return frame_overhead_bytes(self.payload.ndim) + self.payload.nbytes


def frame_overhead_bytes(ndim: int) -> int:
    """Header bytes for an ``ndim``-dimensional payload."""
    return _HEADER.size + ndim * _DIM.size


def encode_frame(
    payload: np.ndarray, kind: int = 0, sender: int = 0, sequence: int = 0
) -> bytes:
    """Serialise one tensor message into a framed byte string."""
    payload = np.ascontiguousarray(payload)
    if payload.ndim > _MAX_NDIM:
        raise WireError(f"payload rank {payload.ndim} exceeds maximum {_MAX_NDIM}")
    if not (0 <= kind < 256):
        raise WireError(f"kind must fit a byte, got {kind}")
    if not (0 <= sender < 2**16):
        raise WireError(f"sender must fit uint16, got {sender}")
    if not (0 <= sequence < 2**32):
        raise WireError(f"sequence must fit uint32, got {sequence}")
    dtype_str = payload.dtype.str.encode("ascii")
    if len(dtype_str) > 8:
        raise WireError(f"unsupported dtype {payload.dtype}")
    header = _HEADER.pack(
        _MAGIC, _VERSION, kind, sender, sequence, dtype_str.ljust(8, b"\0"), payload.ndim
    )
    dims = b"".join(_DIM.pack(d) for d in payload.shape)
    return header + dims + payload.tobytes()


def decode_frame(data: bytes) -> Frame:
    """Parse a framed byte string back into a :class:`Frame`.

    Validates magic, version, and that the payload length matches the
    declared shape — truncated or corrupt frames fail loudly.

    The returned payload is a fresh **writable** array that owns its memory.
    ``np.frombuffer`` over the message bytes would yield a read-only view
    (any downstream in-place op raises ``ValueError: assignment destination
    is read-only``) that also pins the entire frame buffer alive for as long
    as the payload is referenced; receivers are entitled to mutate what they
    received, exactly as if it had arrived in a private device buffer.
    """
    if len(data) < _HEADER.size:
        raise WireError(f"frame too short: {len(data)} bytes")
    magic, version, kind, sender, sequence, dtype_raw, ndim = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise WireError(f"bad magic {magic!r}")
    if version != _VERSION:
        raise WireError(f"unsupported version {version}")
    if ndim > _MAX_NDIM:
        raise WireError(f"declared rank {ndim} exceeds maximum {_MAX_NDIM}")
    offset = _HEADER.size
    if len(data) < offset + ndim * _DIM.size:
        raise WireError("frame truncated in shape section")
    shape = tuple(
        _DIM.unpack_from(data, offset + i * _DIM.size)[0] for i in range(ndim)
    )
    offset += ndim * _DIM.size
    try:
        dtype = np.dtype(dtype_raw.rstrip(b"\0").decode("ascii"))
    except (TypeError, UnicodeDecodeError) as exc:
        raise WireError(f"bad dtype field {dtype_raw!r}") from exc
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    body = data[offset:]
    if len(body) != expected:
        raise WireError(f"payload length {len(body)} != expected {expected}")
    payload = np.empty(shape, dtype=dtype)
    payload.ravel()[:] = np.frombuffer(body, dtype=dtype)
    return Frame(kind=kind, sender=sender, sequence=sequence, payload=payload)
