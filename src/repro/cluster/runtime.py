"""A thread-backed *real* execution runtime for distributed protocols.

The latency figures come from the cost models in :mod:`repro.cluster.simulator`,
but a cost model cannot prove a protocol is *correct*.  This runtime runs the
actual distributed algorithms — Algorithm 2's compute/All-Gather loop, tensor
parallelism's shard/All-Reduce loop — on real concurrent workers exchanging
real arrays, with per-worker byte accounting that the tests reconcile against
the analytic communication volumes of Section V-C.

Workers are threads (NumPy releases the GIL inside BLAS, so this also gives
genuine parallel speed-up for large partitions, though we never rely on that
for reported numbers).
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.tracer import current_tracer

__all__ = ["CommStats", "WorkerContext", "ThreadedRuntime", "RuntimeError_"]


class RuntimeError_(RuntimeError):
    """A worker raised; carries the originating rank."""

    def __init__(self, rank: int, cause: BaseException):
        super().__init__(f"worker {rank} failed: {cause!r}")
        self.rank = rank
        self.cause = cause


@dataclass
class CommStats:
    """Per-worker traffic counters (ring-equivalent volumes for collectives).

    ``bytes_copied`` counts local bytes written into collective output
    buffers (the memory-traffic cost of materialising results), and
    ``buffers_reused`` counts collective calls that wrote into a pooled
    receive buffer instead of allocating a fresh one.
    """

    bytes_sent: float = 0.0
    bytes_received: float = 0.0
    collective_calls: int = 0
    p2p_messages: int = 0
    bytes_copied: float = 0.0
    buffers_reused: int = 0

    @property
    def total_bytes(self) -> float:
        return self.bytes_sent + self.bytes_received


@dataclass
class _SharedState:
    """State shared by all workers of one runtime invocation."""

    world_size: int
    barrier: threading.Barrier = None  # type: ignore[assignment]
    slots: list = field(default_factory=list)
    mailboxes: dict = field(default_factory=dict)
    mailbox_lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        self.barrier = threading.Barrier(self.world_size)
        self.slots = [None] * self.world_size

    def mailbox(self, src: int, dst: int) -> "queue.Queue":
        with self.mailbox_lock:
            key = (src, dst)
            if key not in self.mailboxes:
                self.mailboxes[key] = queue.Queue()
            return self.mailboxes[key]


class WorkerContext:
    """The communication handle passed to each worker function."""

    def __init__(self, rank: int, shared: _SharedState):
        self.rank = rank
        self._shared = shared
        self.stats = CommStats()
        self._sequence = 0
        # Per-rank receive-buffer pool, two generations per (op, shape,
        # dtype): a collective's result stays valid until the *second*-next
        # call of the same collective on this rank (the pool alternates), so
        # the per-layer loops of Voltage / tensor parallelism never allocate
        # after their first iteration.
        self._buffers: dict[tuple, list[np.ndarray]] = {}

    def _recv_buffer(
        self, op: str, shape: tuple[int, ...], dtype, inputs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """A pooled output buffer that aliases none of ``inputs``.

        The pool is per-rank (results stay private) and holds at most two
        buffers per key; the second call of an op allocates its own buffer
        rather than clobbering the first call's still-live result.
        """
        key = (op, shape, np.dtype(dtype))
        pool = self._buffers.setdefault(key, [])
        if len(pool) >= 2:
            for buf in pool:
                if not any(np.shares_memory(buf, arr) for arr in inputs):
                    pool.remove(buf)
                    pool.append(buf)  # most-recently-used goes to the back
                    self.stats.buffers_reused += 1
                    return buf
        buf = np.empty(shape, dtype=dtype)
        pool.append(buf)
        if len(pool) > 2:
            pool.pop(0)
        return buf

    @property
    def world_size(self) -> int:
        return self._shared.world_size

    def barrier(self) -> None:
        self._shared.barrier.wait()

    def _span(self, name: str, kind: str = "comm"):
        """Wall-clock trace span on this rank's track (no-op if untraced)."""
        return current_tracer().span(
            name, cat="runtime", kind=kind, track=f"rank {self.rank}", device=self.rank
        )

    # -- collectives ---------------------------------------------------------

    def all_gather(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Every rank contributes a chunk; every rank gets the concatenation.

        Byte accounting follows the ring algorithm: each rank sends and
        receives ``total - own`` bytes — ``(K-1)/K`` of the tensor for even
        chunks, the paper's Voltage per-layer volume.
        """
        shared = self._shared
        with self._span("all_gather") as span:
            shared.slots[self.rank] = array
            shared.barrier.wait()
            parts = list(shared.slots)
            dtypes = {p.dtype for p in parts}
            if len(dtypes) == 1:
                # write the gathered chunks straight into a pooled output
                # buffer — no list-concatenate allocation per call
                shape = list(parts[0].shape)
                shape[axis] = sum(p.shape[axis] for p in parts)
                out = self._recv_buffer("all_gather", tuple(shape), parts[0].dtype, parts)
                result = np.concatenate(parts, axis=axis, out=out)
                self.stats.bytes_copied += result.nbytes
            else:  # mixed dtypes: fall back to promoting concatenate
                result = np.concatenate(parts, axis=axis)
            shared.barrier.wait()  # nobody may overwrite slots until all have read
            total = sum(p.nbytes for p in parts)
            self.stats.bytes_sent += total - array.nbytes
            self.stats.bytes_received += total - array.nbytes
            self.stats.collective_calls += 1
            span.set(nbytes=total - array.nbytes)
        return result

    def all_reduce(self, array: np.ndarray) -> np.ndarray:
        """Element-wise sum across ranks, everyone receives the result.

        Ring accounting: ``2(K-1)/K`` of the tensor per direction per rank —
        two of these per layer is tensor parallelism's Section V-C volume.
        """
        shared = self._shared
        with self._span("all_reduce") as span:
            shared.slots[self.rank] = array
            shared.barrier.wait()
            arrays = list(shared.slots)
            dtypes = {a.dtype for a in arrays}
            if len(dtypes) == 1:
                # accumulate into a pooled buffer, rank-0 first — the same
                # deterministic summation order as the allocating path
                out = self._recv_buffer("all_reduce", arrays[0].shape, arrays[0].dtype, arrays)
                np.copyto(out, arrays[0])
                for arr in arrays[1:]:
                    np.add(out, arr, out=out)
                self.stats.bytes_copied += out.nbytes
            else:  # mixed dtypes: keep the promoting accumulate semantics
                out = np.array(arrays[0], copy=True)
                for arr in arrays[1:]:
                    out = out + arr
            shared.barrier.wait()
            k = self.world_size
            ring = 2 * (k - 1) * array.nbytes / k if k > 1 else 0.0
            self.stats.bytes_sent += ring
            self.stats.bytes_received += ring
            self.stats.collective_calls += 1
            span.set(nbytes=ring)
        return out

    def broadcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        """Root's array is delivered to every rank.

        Non-root ranks receive a private *copy*: a real broadcast puts a
        distinct buffer on every device, so an in-place mutation by one
        rank must never be visible to the others.  (Returning the root's
        array by reference was a shared-memory leak of the thread backend —
        protocols that mutated their received tensor silently corrupted
        every peer.)
        """
        shared = self._shared
        with self._span("broadcast") as span:
            if self.rank == root:
                if array is None:
                    raise ValueError("broadcast root must supply an array")
                shared.slots[root] = array
            shared.barrier.wait()
            result = shared.slots[root]
            if self.rank != root:
                # still a private per-rank copy (the pool is per-rank), but
                # written into a reused receive buffer
                out = self._recv_buffer("broadcast", result.shape, result.dtype, (result,))
                np.copyto(out, result)
                self.stats.bytes_copied += out.nbytes
                result = out
            shared.barrier.wait()
            if self.rank == root:
                self.stats.bytes_sent += result.nbytes * (self.world_size - 1)
            else:
                self.stats.bytes_received += result.nbytes
            self.stats.collective_calls += 1
            span.set(nbytes=result.nbytes)
        return result

    # -- point to point --------------------------------------------------------
    #
    # Unlike the shared-memory collectives, point-to-point messages cross
    # the wire format (repro.cluster.wire): arrays are actually serialised
    # into framed bytes and parsed back, so the byte counters measure real
    # frame sizes (payload + header) and corrupt frames fail loudly.

    def send(self, dst: int, payload: np.ndarray, kind: int = 0) -> None:
        from repro.cluster.wire import encode_frame

        if not (0 <= dst < self.world_size) or dst == self.rank:
            raise ValueError(f"invalid destination rank {dst} (self={self.rank})")
        with self._span("send") as span:
            self._sequence += 1
            frame = encode_frame(
                payload, kind=kind, sender=self.rank, sequence=self._sequence
            )
            self._shared.mailbox(self.rank, dst).put(frame)
            self.stats.bytes_sent += len(frame)
            self.stats.p2p_messages += 1
            span.set(nbytes=len(frame), dst=dst)

    def recv(self, src: int, timeout: float = 30.0) -> np.ndarray:
        from repro.cluster.wire import decode_frame

        if not (0 <= src < self.world_size) or src == self.rank:
            raise ValueError(f"invalid source rank {src} (self={self.rank})")
        with self._span("recv") as span:
            try:
                data = self._shared.mailbox(src, self.rank).get(timeout=timeout)
            except queue.Empty:
                # a bare queue.Empty says nothing about who was waiting on
                # whom — rewrap with the protocol context so a hung peer is
                # diagnosable from the traceback alone
                raise RuntimeError_(
                    self.rank,
                    TimeoutError(
                        f"rank {self.rank} timed out after {timeout}s waiting to "
                        f"recv from rank {src} (sender never sent, or died)"
                    ),
                ) from None
            frame = decode_frame(data)
            self.stats.bytes_received += len(data)
            self.stats.p2p_messages += 1
            span.set(nbytes=len(data), src=src)
        return frame.payload


class ThreadedRuntime:
    """Run one worker function per rank on real threads and collect results."""

    def __init__(self, world_size: int):
        if world_size < 1:
            raise ValueError(f"world size must be >= 1, got {world_size}")
        self.world_size = world_size

    def run(
        self, worker_fn: Callable[[WorkerContext], object]
    ) -> tuple[list[object], list[CommStats]]:
        """Execute ``worker_fn(ctx)`` on every rank; returns (results, stats).

        If any worker raises, the first failure is re-raised as
        :class:`RuntimeError_` after all threads have been joined (barriers
        are aborted so surviving workers do not deadlock).
        """
        shared = _SharedState(world_size=self.world_size)
        results: list[object] = [None] * self.world_size
        stats: list[CommStats] = [CommStats() for _ in range(self.world_size)]
        errors: list[RuntimeError_] = []
        error_lock = threading.Lock()

        def runner(rank: int) -> None:
            ctx = WorkerContext(rank, shared)
            try:
                with current_tracer().span(
                    "worker", cat="runtime", kind="request",
                    track=f"rank {rank}", device=rank,
                ):
                    results[rank] = worker_fn(ctx)
                stats[rank] = ctx.stats
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                wrapped = exc if isinstance(exc, RuntimeError_) else RuntimeError_(rank, exc)
                with error_lock:
                    errors.append(wrapped)
                shared.barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(rank,), name=f"worker-{rank}")
            for rank in range(self.world_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        self._record_metrics(stats)
        return results, stats

    @staticmethod
    def _record_metrics(stats: Sequence[CommStats]) -> None:
        """Fold per-worker CommStats into the process-wide metrics registry."""
        registry = get_registry()
        registry.counter("runtime.runs_total").inc()
        registry.counter("runtime.bytes_sent").inc(sum(s.bytes_sent for s in stats))
        registry.counter("runtime.bytes_received").inc(
            sum(s.bytes_received for s in stats)
        )
        registry.counter("runtime.collective_calls").inc(
            sum(s.collective_calls for s in stats)
        )
        registry.counter("runtime.p2p_messages").inc(sum(s.p2p_messages for s in stats))
        registry.counter("runtime.bytes_copied").inc(sum(s.bytes_copied for s in stats))
        registry.counter("runtime.buffers_reused").inc(
            sum(s.buffers_reused for s in stats)
        )
        per_worker = registry.histogram("runtime.worker_total_bytes")
        for s in stats:
            per_worker.observe(s.total_bytes)

    def run_spmd(
        self, worker_fns: Sequence[Callable[[WorkerContext], object]]
    ) -> tuple[list[object], list[CommStats]]:
        """Like :meth:`run` but with a distinct function per rank."""
        if len(worker_fns) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} worker functions, got {len(worker_fns)}"
            )
        return self.run(lambda ctx: worker_fns[ctx.rank](ctx))
