"""A thread-backed *real* execution runtime for distributed protocols.

The latency figures come from the cost models in :mod:`repro.cluster.simulator`,
but a cost model cannot prove a protocol is *correct*.  This runtime runs the
actual distributed algorithms — Algorithm 2's compute/All-Gather loop, tensor
parallelism's shard/All-Reduce loop — on real concurrent workers exchanging
real arrays, with per-worker byte accounting that the tests reconcile against
the analytic communication volumes of Section V-C.

Workers are threads (NumPy releases the GIL inside BLAS, so this also gives
genuine parallel speed-up for large partitions, though we never rely on that
for reported numbers).

Two families of collectives coexist:

- the original **slot-and-barrier** collectives (``all_gather``,
  ``all_reduce``, ``broadcast``), which exchange references through shared
  slots and *account* ring-equivalent byte volumes;
- **ring** collectives (``ring_all_gather``, ``all_gather_async``,
  ``all_reduce_async``), which actually move framed chunks rank-to-rank over
  the p2p wire path in K-1 steps, so the byte counters measure *executed*
  ring traffic (payload plus framing overhead).  The async variants return a
  :class:`CollectiveHandle` backed by a per-rank communication thread and
  stream chunks to the caller as they arrive — the mechanism the systems use
  to overlap next-layer compute with the in-flight gather.
"""

from __future__ import annotations

import queue
import threading
from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.obs.metrics import get_registry
from repro.obs.tracer import current_tracer

__all__ = [
    "CommStats",
    "CollectiveHandle",
    "WorkerContext",
    "ThreadedRuntime",
    "RuntimeError_",
]

#: Wire frame kind used by the ring collectives (p2p ``send`` uses kind 0).
_RING_FRAME_KIND = 1

#: Default seconds a blocked receive waits before failing loudly.
DEFAULT_TIMEOUT = 30.0


class RuntimeError_(RuntimeError):
    """A worker raised; carries the originating rank."""

    def __init__(self, rank: int, cause: BaseException):
        super().__init__(f"worker {rank} failed: {cause!r}")
        self.rank = rank
        self.cause = cause


def _reduce_slice_bytes(array: np.ndarray, k: int) -> list[int]:
    """Exact byte size of each rank's reduce-scatter slice of ``array``.

    Mirrors :meth:`WorkerContext.all_reduce_async`'s ``divmod`` row split so
    the emulated accounting of the blocking ``all_reduce`` equals the bytes
    the executed ring actually moves — integers, even when ``k`` does not
    divide the leading dimension.  0-d / zero-row arrays fall back to an
    even byte split (the ring degenerates; only the total matters).
    """
    nbytes = int(array.nbytes)
    if k <= 1:
        return [nbytes]
    if array.ndim == 0 or array.shape[0] == 0:
        base, extra = divmod(nbytes, k)
        return [base + (1 if j < extra else 0) for j in range(k)]
    rows = array.shape[0]
    row_bytes = nbytes // rows
    base, extra = divmod(rows, k)
    return [(base + (1 if j < extra else 0)) * row_bytes for j in range(k)]


@dataclass
class CommStats:
    """Per-worker traffic counters (ring-equivalent volumes for collectives).

    Every byte counter is an exact integer: the process runtime measures the
    integer bytes that really cross a socket, and the emulated ring volumes
    must not drift from those by float rounding (uneven splits used to push
    ``2(K-1)·nbytes/K`` floats in here).  ``bytes_copied`` counts local bytes
    written into collective output buffers (the memory-traffic cost of
    materialising results), and ``buffers_reused`` counts collective calls
    that wrote into a pooled receive buffer instead of allocating a fresh
    one.
    """

    bytes_sent: int = 0
    bytes_received: int = 0
    collective_calls: int = 0
    p2p_messages: int = 0
    bytes_copied: int = 0
    buffers_reused: int = 0

    @property
    def total_bytes(self) -> int:
        return self.bytes_sent + self.bytes_received


@dataclass
class _SharedState:
    """State shared by all workers of one runtime invocation."""

    world_size: int
    barrier: threading.Barrier = None  # type: ignore[assignment]
    slots: list = field(default_factory=list)
    mailboxes: dict = field(default_factory=dict)
    mailbox_lock: threading.Lock = field(default_factory=threading.Lock)

    def __post_init__(self) -> None:
        self.barrier = threading.Barrier(self.world_size)
        self.slots = [None] * self.world_size

    def mailbox(self, src: int, dst: int, tag=None) -> "queue.Queue":
        """FIFO channel from ``src`` to ``dst``.

        ``tag`` separates concurrent conversations: each ring collective gets
        its own tagged channels so an async gather's comm thread can never
        consume a frame meant for the main thread's p2p ``recv`` (or for
        another in-flight collective).
        """
        with self.mailbox_lock:
            key = (src, dst, tag)
            if key not in self.mailboxes:
                self.mailboxes[key] = queue.Queue()
            return self.mailboxes[key]


class CollectiveHandle:
    """Result of a nonblocking ring collective; chunks stream in as it runs.

    Returned immediately by :meth:`WorkerContext.all_gather_async` /
    :meth:`WorkerContext.all_reduce_async` while a per-rank communication
    thread drives the ring.  The caller may:

    - poll :meth:`chunk_ready` / block on :meth:`chunk` to consume per-rank
      chunks *while later ring steps are still in flight* (this is what the
      overlapped systems do), or
    - call :meth:`wait` for the fully assembled result, identical to the
      blocking collective.

    Waits are bounded by the runtime's timeout and fail with rank/step
    context.  An un-waited handle is safe: the comm thread finishes (or
    times out) on its own and the runtime joins it before returning.
    """

    def __init__(self, op: str, ctx: "WorkerContext", axis: int = 0, ranges=None):
        self.op = op
        self._ctx = ctx
        self._axis = axis
        self._ranges = ranges  # all_reduce: (start, stop) row span per rank
        k = ctx.world_size
        self._chunks: list[np.ndarray | None] = [None] * k
        self._events = [threading.Event() for _ in range(k)]
        self._done = threading.Event()
        self._error: BaseException | None = None
        self._result: np.ndarray | None = None
        self._assemble_lock = threading.Lock()

    @property
    def world_size(self) -> int:
        return len(self._chunks)

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def arrival_order(self) -> list[int]:
        """Source ranks in the order their chunks arrive here (own rank first).

        Step ``s`` of the ring delivers the chunk originating from rank
        ``(self - 1 - s) mod K``; consuming chunks in this order never
        blocks longer than one in-flight step.
        """
        rank, k = self._ctx.rank, self.world_size
        return [(rank - s) % k for s in range(k)]

    def range_of(self, src: int) -> tuple[int, int]:
        """Row span ``[start, stop)`` that rank ``src``'s chunk covers
        (reduce-scatter ownership; all_gather callers use the partition
        scheme instead)."""
        if self._ranges is None:
            raise ValueError(f"{self.op} chunks carry no row ranges")
        return self._ranges[src]

    def chunk_ready(self, src: int) -> bool:
        """True once rank ``src``'s chunk has arrived (non-blocking)."""
        return self._events[src].is_set() and self._chunks[src] is not None

    def chunk(self, src: int, timeout: float | None = None) -> np.ndarray:
        """Block until rank ``src``'s chunk arrives and return it."""
        limit = self._ctx._timeout if timeout is None else timeout
        if not self._events[src].wait(limit):
            raise RuntimeError_(
                self._ctx.rank,
                TimeoutError(
                    f"rank {self._ctx.rank} timed out after {limit}s waiting for "
                    f"the {self.op} chunk from rank {src}"
                ),
            )
        if self._chunks[src] is None:
            raise self._error  # comm thread failed before delivering this chunk
        return self._chunks[src]

    def wait(self, timeout: float | None = None) -> np.ndarray:
        """Block until the collective completes; return the assembled result."""
        limit = self._ctx._timeout if timeout is None else timeout
        if not self._done.wait(limit):
            raise RuntimeError_(
                self._ctx.rank,
                TimeoutError(
                    f"rank {self._ctx.rank} timed out after {limit}s waiting for "
                    f"{self.op} to complete"
                ),
            )
        if self._error is not None:
            raise self._error
        with self._assemble_lock:
            if self._result is None:
                # assembly is lazy and happens on the *waiter's* thread — a
                # caller that consumed every chunk via chunk() never pays it
                self._result = np.concatenate(self._chunks, axis=self._axis)
                self._ctx._add_stats(bytes_copied=self._result.nbytes)
        return self._result

    # -- comm-thread side ------------------------------------------------------

    def _deliver(self, src: int, payload: np.ndarray) -> None:
        self._chunks[src] = payload
        self._events[src].set()

    def _finish(self) -> None:
        self._done.set()

    def _fail(self, error: BaseException) -> None:
        self._error = error
        for event in self._events:
            event.set()  # wake chunk() waiters; undelivered slots raise
        self._done.set()


class WorkerContext:
    """The communication handle passed to each worker function."""

    def __init__(self, rank: int, shared: _SharedState, timeout: float = DEFAULT_TIMEOUT):
        self.rank = rank
        self._shared = shared
        self._timeout = timeout
        self.stats = CommStats()
        self._sequence = 0
        self._collective_sequence = 0
        # counters are mutated by the main worker thread *and* by async comm
        # threads; a lock keeps the accounting exact
        self._stats_lock = threading.Lock()
        self._comm_threads: list[threading.Thread] = []
        self._comm_errors: list[RuntimeError_] = []
        # Per-rank receive-buffer pool, two generations per (op, shape,
        # dtype): a collective's result stays valid until the *second*-next
        # call of the same collective on this rank (the pool alternates), so
        # the per-layer loops of Voltage / tensor parallelism never allocate
        # after their first iteration.
        self._buffers: dict[tuple, list[np.ndarray]] = {}

    def _add_stats(self, **deltas) -> None:
        with self._stats_lock:
            for name, delta in deltas.items():
                setattr(self.stats, name, getattr(self.stats, name) + delta)

    def _recv_buffer(
        self, op: str, shape: tuple[int, ...], dtype, inputs: Sequence[np.ndarray]
    ) -> np.ndarray:
        """A pooled output buffer that aliases none of ``inputs``.

        The pool is per-rank (results stay private) and holds at most two
        buffers per key; the second call of an op allocates its own buffer
        rather than clobbering the first call's still-live result.
        """
        key = (op, shape, np.dtype(dtype))
        pool = self._buffers.setdefault(key, [])
        if len(pool) >= 2:
            for buf in pool:
                if not any(np.shares_memory(buf, arr) for arr in inputs):
                    pool.remove(buf)
                    pool.append(buf)  # most-recently-used goes to the back
                    self._add_stats(buffers_reused=1)
                    return buf
        buf = np.empty(shape, dtype=dtype)
        pool.append(buf)
        if len(pool) > 2:
            pool.pop(0)
        return buf

    @property
    def world_size(self) -> int:
        return self._shared.world_size

    @property
    def timeout(self) -> float:
        """Seconds a blocked receive / handle wait allows before failing."""
        return self._timeout

    def barrier(self) -> None:
        self._shared.barrier.wait()

    def _span(self, name: str, kind: str = "comm"):
        """Wall-clock trace span on this rank's track (no-op if untraced)."""
        return current_tracer().span(
            name, cat="runtime", kind=kind, track=f"rank {self.rank}", device=self.rank
        )

    # -- collectives ---------------------------------------------------------

    def all_gather(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Every rank contributes a chunk; every rank gets the concatenation.

        Byte accounting follows the ring algorithm: each rank sends and
        receives ``total - own`` bytes — ``(K-1)/K`` of the tensor for even
        chunks, the paper's Voltage per-layer volume.
        """
        shared = self._shared
        with self._span("all_gather") as span:
            shared.slots[self.rank] = array
            shared.barrier.wait()
            parts = list(shared.slots)
            dtypes = {p.dtype for p in parts}
            if len(dtypes) == 1:
                # write the gathered chunks straight into a pooled output
                # buffer — no list-concatenate allocation per call
                shape = list(parts[0].shape)
                shape[axis] = sum(p.shape[axis] for p in parts)
                out = self._recv_buffer("all_gather", tuple(shape), parts[0].dtype, parts)
                result = np.concatenate(parts, axis=axis, out=out)
            else:  # mixed dtypes: fall back to promoting concatenate
                result = np.concatenate(parts, axis=axis)
            shared.barrier.wait()  # nobody may overwrite slots until all have read
            total = sum(p.nbytes for p in parts)
            self._add_stats(
                bytes_sent=total - array.nbytes,
                bytes_received=total - array.nbytes,
                collective_calls=1,
                # both branches materialise the full result locally; the
                # promoting fallback used to skip this counter
                bytes_copied=result.nbytes,
            )
            span.set(nbytes=total - array.nbytes)
        return result

    def all_reduce(self, array: np.ndarray) -> np.ndarray:
        """Element-wise sum across ranks, everyone receives the result.

        Ring accounting: ``2(K-1)/K`` of the tensor per direction per rank —
        two of these per layer is tensor parallelism's Section V-C volume.
        """
        shared = self._shared
        with self._span("all_reduce") as span:
            shared.slots[self.rank] = array
            shared.barrier.wait()
            arrays = list(shared.slots)
            dtypes = {a.dtype for a in arrays}
            if len(dtypes) == 1:
                # accumulate into a pooled buffer, rank-0 first — the same
                # deterministic summation order as the allocating path
                out = self._recv_buffer("all_reduce", arrays[0].shape, arrays[0].dtype, arrays)
                np.copyto(out, arrays[0])
                for arr in arrays[1:]:
                    np.add(out, arr, out=out)
            else:  # mixed dtypes: keep the promoting accumulate semantics
                out = np.array(arrays[0], copy=True)
                for arr in arrays[1:]:
                    out = out + arr
            shared.barrier.wait()
            k = self.world_size
            if k > 1:
                # exact executed-ring volume (reduce-scatter + all-gather of
                # the divmod row slices), not the float 2(K-1)·nbytes/K
                slices = _reduce_slice_bytes(array, k)
                total = sum(slices)
                sent = (total - slices[self.rank]) + (total - slices[(self.rank + 1) % k])
                received = (k - 1) * slices[self.rank] + (total - slices[self.rank])
            else:
                sent = received = 0
            self._add_stats(
                bytes_sent=sent,
                bytes_received=received,
                collective_calls=1,
                # counted on both branches (the fallback used to skip it)
                bytes_copied=out.nbytes,
            )
            span.set(nbytes=sent)
        return out

    def broadcast(self, array: np.ndarray | None, root: int = 0) -> np.ndarray:
        """Root's array is delivered to every rank.

        Non-root ranks receive a private *copy*: a real broadcast puts a
        distinct buffer on every device, so an in-place mutation by one
        rank must never be visible to the others.  (Returning the root's
        array by reference was a shared-memory leak of the thread backend —
        protocols that mutated their received tensor silently corrupted
        every peer.)
        """
        shared = self._shared
        with self._span("broadcast") as span:
            if self.rank == root:
                if array is None:
                    raise ValueError("broadcast root must supply an array")
                shared.slots[root] = array
            shared.barrier.wait()
            result = shared.slots[root]
            if self.rank != root:
                # still a private per-rank copy (the pool is per-rank), but
                # written into a reused receive buffer
                out = self._recv_buffer("broadcast", result.shape, result.dtype, (result,))
                np.copyto(out, result)
                self._add_stats(bytes_copied=out.nbytes)
                result = out
            shared.barrier.wait()
            if self.rank == root:
                self._add_stats(bytes_sent=result.nbytes * (self.world_size - 1))
            else:
                self._add_stats(bytes_received=result.nbytes)
            self._add_stats(collective_calls=1)
            span.set(nbytes=result.nbytes)
        return result

    # -- ring collectives ------------------------------------------------------
    #
    # Unlike the slot-based collectives above, these actually move framed
    # chunks rank-to-rank in K-1 steps over the tagged mailbox channels, so
    # ``bytes_sent`` / ``bytes_received`` count executed wire traffic
    # (payload + frame header per hop) rather than an emulated volume.

    def _collective_tag(self, op: str) -> tuple:
        """A channel tag all ranks agree on by SPMD program order."""
        self._collective_sequence += 1
        return (op, self._collective_sequence)

    # -- frame transport hooks -------------------------------------------------
    #
    # Every byte that "crosses the wire" goes through these two methods.  The
    # thread backend moves encoded frames through tagged in-process mailboxes;
    # the process backend (repro.cluster.process_runtime) overrides them to
    # move the same frames over loopback TCP sockets.  The returned byte
    # counts are what lands in CommStats — for threads the frame length, for
    # sockets the frame plus its envelope.

    def _put_frame(self, dst: int, tag, frame: bytes) -> int:
        """Deliver one encoded frame to ``dst``; return bytes sent."""
        self._shared.mailbox(self.rank, dst, tag).put(frame)
        return len(frame)

    def _get_frame(self, src: int, tag, timeout: float, context: str) -> tuple[bytes, int]:
        """Take the next frame from ``src``; return (frame, bytes received).

        Raises :class:`RuntimeError_` wrapping a ``TimeoutError`` carrying
        ``context`` when nothing arrives within ``timeout`` seconds.
        """
        try:
            data = self._shared.mailbox(src, self.rank, tag).get(timeout=timeout)
        except queue.Empty:
            raise RuntimeError_(
                self.rank,
                TimeoutError(
                    f"rank {self.rank} timed out after {timeout}s {context}"
                ),
            ) from None
        return data, len(data)

    def _ring_send(self, dst: int, payload: np.ndarray, tag, step: int) -> None:
        from repro.cluster.wire import encode_frame

        frame = encode_frame(
            payload, kind=_RING_FRAME_KIND, sender=self.rank, sequence=step
        )
        sent = self._put_frame(dst, tag, frame)
        self._add_stats(bytes_sent=sent)

    def _ring_recv(self, src: int, tag, context: str) -> np.ndarray:
        from repro.cluster.wire import decode_frame

        data, received = self._get_frame(
            src, tag, self._timeout,
            context=f"in {context}, waiting on rank {src} (peer never sent, or died)",
        )
        frame = decode_frame(data)
        self._add_stats(bytes_received=received)
        return frame.payload

    def _ring_steps(self, array: np.ndarray, tag, op: str, on_chunk) -> None:
        """Run the K-1 ring steps; call ``on_chunk(src, payload)`` as chunks land.

        Step ``s``: send the chunk currently held to rank ``(self+1) mod K``,
        receive from ``(self-1) mod K`` the chunk originating at rank
        ``(self-1-s) mod K``.  Mailbox sends are buffered, so send-then-recv
        cannot deadlock; a missing peer surfaces as a loud per-step timeout.
        """
        k = self.world_size
        on_chunk(self.rank, array)
        if k == 1:
            return
        right, left = (self.rank + 1) % k, (self.rank - 1) % k
        current = array
        for step in range(k - 1):
            self._ring_send(right, current, tag, step)
            src = (self.rank - 1 - step) % k
            current = self._ring_recv(
                left, tag,
                context=f"{op} ring step {step + 1}/{k - 1} (chunk from rank {src})",
            )
            on_chunk(src, current)

    def ring_all_gather(self, array: np.ndarray, axis: int = 0) -> np.ndarray:
        """Blocking true ring all-gather over the framed wire path.

        Bit-identical to :meth:`all_gather` (chunks are concatenated in rank
        order either way, uneven sizes included) but every chunk really flows
        around the ring, so the byte counters measure executed traffic.
        """
        chunks: list[np.ndarray | None] = [None] * self.world_size
        tag = self._collective_tag("ring_all_gather")
        with self._span("ring_all_gather") as span:
            self._ring_steps(
                array, tag, "ring all-gather",
                lambda src, payload: chunks.__setitem__(src, payload),
            )
            result = np.concatenate(chunks, axis=axis)
            self._add_stats(collective_calls=1, bytes_copied=result.nbytes)
            span.set(nbytes=sum(c.nbytes for c in chunks) - array.nbytes)
        return result

    def all_gather_async(self, array: np.ndarray, axis: int = 0) -> CollectiveHandle:
        """Nonblocking ring all-gather; returns a :class:`CollectiveHandle`.

        A per-rank comm thread drives the K-1 ring steps and delivers each
        chunk to the handle as it arrives, so the calling thread can run
        position-wise compute on already-arrived chunks while the rest of the
        ring is still in flight.  ``handle.wait()`` is bit-identical to the
        blocking collectives.
        """
        tag = self._collective_tag("all_gather_async")
        handle = CollectiveHandle("all_gather_async", self, axis=axis)
        self._add_stats(collective_calls=1)

        def pump() -> None:
            try:
                with current_tracer().span(
                    "all_gather_async", cat="runtime", kind="comm",
                    track=f"rank {self.rank} comm", device=self.rank,
                ) as span:
                    total = 0
                    def deliver(src: int, payload: np.ndarray) -> None:
                        nonlocal total
                        total += payload.nbytes
                        handle._deliver(src, payload)
                    self._ring_steps(array, tag, "async all-gather", deliver)
                    span.set(nbytes=total - array.nbytes)
                handle._finish()
            except BaseException as exc:  # noqa: BLE001 - surfaced via the handle
                wrapped = exc if isinstance(exc, RuntimeError_) else RuntimeError_(self.rank, exc)
                self._comm_errors.append(wrapped)
                handle._fail(wrapped)

        self._launch_comm_thread(pump, tag)
        return handle

    def all_reduce_async(self, array: np.ndarray) -> CollectiveHandle:
        """Nonblocking ring all-reduce (reduce-scatter + ring all-gather).

        Rank ``j`` owns row slice ``j`` (``array_split`` boundaries): every
        peer sends it that slice directly, the owner sums the K partials **in
        rank order** (the same deterministic elementwise summation as the
        blocking :meth:`all_reduce`, restricted to its rows), then the
        reduced slices circle the ring.  Executed volume per rank and
        direction is ``2(K-1)/K`` of the tensor — the Section V-C ring
        figure — and ``handle.wait()`` is bit-identical to ``all_reduce``.
        ``handle.chunk(src)`` / ``handle.range_of(src)`` expose reduced row
        slices as they arrive, for streaming position-wise epilogues.
        """
        if array.ndim < 1:
            raise ValueError("all_reduce_async needs at least a 1-D array")
        k = self.world_size
        n = array.shape[0]
        base, extra = divmod(n, k)
        ranges, start = [], 0
        for j in range(k):
            width = base + (1 if j < extra else 0)
            ranges.append((start, start + width))
            start += width
        handle = CollectiveHandle("all_reduce_async", self, axis=0, ranges=ranges)
        tag = self._collective_tag("all_reduce_async")
        scatter_tag, gather_tag = (tag, "rs"), (tag, "ag")
        self._add_stats(collective_calls=1)

        def pump() -> None:
            try:
                with current_tracer().span(
                    "all_reduce_async", cat="runtime", kind="comm",
                    track=f"rank {self.rank} comm", device=self.rank,
                ) as span:
                    # phase 1 — reduce-scatter: hand slice j straight to its owner
                    for j in range(k):
                        if j != self.rank:
                            lo, hi = ranges[j]
                            self._ring_send(j, array[lo:hi], scatter_tag, 0)
                    lo, hi = ranges[self.rank]
                    parts = [
                        array[lo:hi] if src == self.rank else self._ring_recv(
                            src, scatter_tag,
                            context=f"async all-reduce scatter (slice from rank {src})",
                        )
                        for src in range(k)
                    ]
                    if len({p.dtype for p in parts}) == 1:
                        acc = np.array(parts[0], copy=True)
                        for part in parts[1:]:
                            np.add(acc, part, out=acc)
                    else:  # mixed dtypes: promoting accumulate, same rank order
                        acc = np.array(parts[0], copy=True)
                        for part in parts[1:]:
                            acc = acc + part
                    self._add_stats(bytes_copied=acc.nbytes)
                    # phase 2 — ring all-gather of the reduced slices
                    self._ring_steps(acc, gather_tag, "async all-reduce gather", handle._deliver)
                    slices = _reduce_slice_bytes(array, k)
                    total = sum(slices)
                    ring = (
                        (total - slices[self.rank])
                        + (total - slices[(self.rank + 1) % k])
                        if k > 1
                        else 0
                    )
                    span.set(nbytes=ring)
                handle._finish()
            except BaseException as exc:  # noqa: BLE001 - surfaced via the handle
                wrapped = exc if isinstance(exc, RuntimeError_) else RuntimeError_(self.rank, exc)
                self._comm_errors.append(wrapped)
                handle._fail(wrapped)

        self._launch_comm_thread(pump, tag)
        return handle

    def _launch_comm_thread(self, pump: Callable[[], None], tag) -> None:
        if self.world_size == 1:
            pump()  # no peers: the collective completes inline
            return
        thread = threading.Thread(
            target=pump, name=f"comm-{self.rank}-{tag[0]}-{tag[1]}", daemon=True
        )
        self._comm_threads.append(thread)
        thread.start()

    def _join_comm_threads(self) -> None:
        """Join every spawned comm thread (each blocks at most ``timeout``
        per ring step, so this terminates even after peer failures)."""
        for thread in self._comm_threads:
            thread.join()

    # -- point to point --------------------------------------------------------
    #
    # Unlike the shared-memory collectives, point-to-point messages cross
    # the wire format (repro.cluster.wire): arrays are actually serialised
    # into framed bytes and parsed back, so the byte counters measure real
    # frame sizes (payload + header) and corrupt frames fail loudly.

    def send(self, dst: int, payload: np.ndarray, kind: int = 0) -> None:
        from repro.cluster.wire import encode_frame

        if not (0 <= dst < self.world_size) or dst == self.rank:
            raise ValueError(f"invalid destination rank {dst} (self={self.rank})")
        with self._span("send") as span:
            self._sequence += 1
            frame = encode_frame(
                payload, kind=kind, sender=self.rank, sequence=self._sequence
            )
            sent = self._put_frame(dst, None, frame)
            self._add_stats(bytes_sent=sent, p2p_messages=1)
            span.set(nbytes=sent, dst=dst)

    def recv(self, src: int, timeout: float | None = None) -> np.ndarray:
        from repro.cluster.wire import decode_frame

        if not (0 <= src < self.world_size) or src == self.rank:
            raise ValueError(f"invalid source rank {src} (self={self.rank})")
        if timeout is None:
            timeout = self._timeout
        with self._span("recv") as span:
            # a bare queue timeout says nothing about who was waiting on
            # whom — _get_frame rewraps with the protocol context so a hung
            # peer is diagnosable from the traceback alone
            data, received = self._get_frame(
                src, None, timeout,
                context=f"waiting to recv from rank {src} (sender never sent, or died)",
            )
            frame = decode_frame(data)
            self._add_stats(bytes_received=received, p2p_messages=1)
            span.set(nbytes=received, src=src)
        return frame.payload


class ThreadedRuntime:
    """Run one worker function per rank on real threads and collect results.

    ``timeout`` bounds every blocking receive — the p2p ``recv`` default,
    each ring step of the (a)sync collectives, and ``CollectiveHandle``
    waits — so a hung peer fails loudly with rank/step context instead of
    stalling the whole run.
    """

    def __init__(self, world_size: int, timeout: float = DEFAULT_TIMEOUT):
        if world_size < 1:
            raise ValueError(f"world size must be >= 1, got {world_size}")
        if timeout <= 0:
            raise ValueError(f"timeout must be > 0 seconds, got {timeout}")
        self.world_size = world_size
        self.timeout = timeout

    def run(
        self, worker_fn: Callable[[WorkerContext], object]
    ) -> tuple[list[object], list[CommStats]]:
        """Execute ``worker_fn(ctx)`` on every rank; returns (results, stats).

        If any worker raises, the first failure is re-raised as
        :class:`RuntimeError_` after all threads have been joined (barriers
        are aborted so surviving workers do not deadlock).  Comm threads of
        async collectives — including un-waited handles — are joined before
        returning; a comm-thread failure the worker never observed is
        re-raised here so ring errors cannot vanish silently.
        """
        shared = _SharedState(world_size=self.world_size)
        results: list[object] = [None] * self.world_size
        stats: list[CommStats] = [CommStats() for _ in range(self.world_size)]
        errors: list[RuntimeError_] = []
        error_lock = threading.Lock()

        def runner(rank: int) -> None:
            ctx = WorkerContext(rank, shared, timeout=self.timeout)
            try:
                with current_tracer().span(
                    "worker", cat="runtime", kind="request",
                    track=f"rank {rank}", device=rank,
                ):
                    results[rank] = worker_fn(ctx)
                ctx._join_comm_threads()
                if ctx._comm_errors:
                    raise ctx._comm_errors[0]
                stats[rank] = ctx.stats
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                wrapped = exc if isinstance(exc, RuntimeError_) else RuntimeError_(rank, exc)
                with error_lock:
                    errors.append(wrapped)
                shared.barrier.abort()

        threads = [
            threading.Thread(target=runner, args=(rank,), name=f"worker-{rank}")
            for rank in range(self.world_size)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        self._record_metrics(stats)
        return results, stats

    @staticmethod
    def _record_metrics(stats: Sequence[CommStats]) -> None:
        """Fold per-worker CommStats into the process-wide metrics registry."""
        registry = get_registry()
        registry.counter("runtime.runs_total").inc()
        registry.counter("runtime.bytes_sent").inc(sum(s.bytes_sent for s in stats))
        registry.counter("runtime.bytes_received").inc(
            sum(s.bytes_received for s in stats)
        )
        registry.counter("runtime.collective_calls").inc(
            sum(s.collective_calls for s in stats)
        )
        registry.counter("runtime.p2p_messages").inc(sum(s.p2p_messages for s in stats))
        registry.counter("runtime.bytes_copied").inc(sum(s.bytes_copied for s in stats))
        registry.counter("runtime.buffers_reused").inc(
            sum(s.buffers_reused for s in stats)
        )
        per_worker = registry.histogram("runtime.worker_total_bytes")
        for s in stats:
            per_worker.observe(s.total_bytes)

    def run_spmd(
        self, worker_fns: Sequence[Callable[[WorkerContext], object]]
    ) -> tuple[list[object], list[CommStats]]:
        """Like :meth:`run` but with a distinct function per rank."""
        if len(worker_fns) != self.world_size:
            raise ValueError(
                f"expected {self.world_size} worker functions, got {len(worker_fns)}"
            )
        return self.run(lambda ctx: worker_fns[ctx.rank](ctx))
