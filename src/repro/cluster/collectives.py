"""Collective communication: cost models and data operations.

Two halves that the tests tie together:

- **cost models** — α–β timing of the ring All-Gather / ring All-Reduce /
  broadcast / gather patterns used by the inference systems.  The per-device
  *volumes* implied here are exactly the paper's Section V-C numbers:
  All-Gather moves ``(K-1)/K`` of the activation per device and each
  All-Reduce moves ``2(K-1)/K`` of it, so two All-Reduces cost 4× one
  All-Gather.

- **data operations** — the corresponding array combinators
  (:func:`all_gather_arrays`, :func:`all_reduce_arrays`) used by the
  host-emulated execution paths and the threaded runtime.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

from repro.cluster.network import NetworkSpec

__all__ = [
    "all_gather_seconds",
    "all_reduce_seconds",
    "broadcast_seconds",
    "gather_seconds",
    "all_gather_volume_bytes",
    "all_reduce_volume_bytes",
    "all_gather_arrays",
    "all_reduce_arrays",
]


def _validate_k(k: int) -> None:
    if k < 1:
        raise ValueError(f"participant count must be >= 1, got {k}")


# ---------------------------------------------------------------------------
# Cost models
# ---------------------------------------------------------------------------


def all_gather_seconds(network: NetworkSpec, chunk_bytes: Sequence[float]) -> float:
    """Ring All-Gather of per-device chunks.

    K-1 steps; in each step every device forwards one chunk to its neighbour,
    so the step time is bounded by the largest chunk in flight.  With even
    chunks of ``S = N·F·4/K`` bytes this is ``(K-1)·(α + S/β)`` — per-device
    volume ``(K-1)·N·F·4/K``, the paper's Voltage number.
    """
    k = len(chunk_bytes)
    _validate_k(k)
    if k == 1:
        return 0.0
    largest = max(chunk_bytes)
    return (k - 1) * network.transfer_seconds(largest)


def all_reduce_seconds(network: NetworkSpec, total_bytes: float, k: int) -> float:
    """All-Reduce of a ``total_bytes`` tensor replicated on K devices.

    Recursive halving-doubling cost model (what gloo-style CPU backends
    approximate): ``2·ceil(log2 K)`` latency rounds plus the bandwidth term
    for the per-device volume ``2(K-1)·S/K`` — so the two All-Reduces of
    tensor parallelism move ``4(K-1)·N·F·4/K`` bytes per layer, the exact
    Section V-C accounting, while paying fewer latency rounds than a ring
    would (being generous to the tensor-parallel baseline).
    """
    _validate_k(k)
    if k == 1 or total_bytes == 0:
        return 0.0
    rounds = 2 * math.ceil(math.log2(k))
    volume = 2 * (k - 1) * total_bytes / k
    return rounds * network.latency_seconds + network.serialization_seconds(volume)


def broadcast_seconds(
    network: NetworkSpec, nbytes: float, k: int, algorithm: str = "tree"
) -> float:
    """Terminal → K computing devices broadcast of the input features.

    ``tree`` (default): binomial tree, ``ceil(log2(K+1))`` full-message
    steps.  ``sequential``: the terminal unicasts K copies back-to-back —
    the worst case for a cheap edge deployment.  The choice affects Voltage
    and tensor parallelism identically (both broadcast once per request).
    """
    _validate_k(k)
    if nbytes == 0:
        return 0.0
    if algorithm == "tree":
        steps = math.ceil(math.log2(k + 1))
        return steps * network.transfer_seconds(nbytes)
    if algorithm == "sequential":
        return k * network.transfer_seconds(nbytes)
    raise ValueError(f"unknown broadcast algorithm {algorithm!r}")


def gather_seconds(network: NetworkSpec, chunk_bytes: Sequence[float]) -> float:
    """K devices → terminal gather; arrivals serialise on the terminal NIC."""
    _validate_k(len(chunk_bytes))
    return sum(network.transfer_seconds(b) for b in chunk_bytes if b > 0)


def all_gather_volume_bytes(chunk_bytes: Sequence[float]) -> float:
    """Per-device traffic (sent + received) of the ring All-Gather.

    Each device forwards K-1 chunks and receives K-1 chunks; with even
    chunks the *received* payload alone is ``(K-1)/K`` of the tensor — the
    paper counts one direction, and so do we.
    """
    k = len(chunk_bytes)
    _validate_k(k)
    total = sum(chunk_bytes)
    return total - max(chunk_bytes) if k > 1 else 0.0


def all_reduce_volume_bytes(total_bytes: float, k: int) -> float:
    """Per-device one-directional traffic of a ring All-Reduce."""
    _validate_k(k)
    return 2 * (k - 1) * total_bytes / k if k > 1 else 0.0


# ---------------------------------------------------------------------------
# Data operations
# ---------------------------------------------------------------------------


def all_gather_arrays(parts: Sequence[np.ndarray], axis: int = 0) -> np.ndarray:
    """Reassemble the full tensor from ordered per-device partitions."""
    if not parts:
        raise ValueError("all_gather needs at least one partition")
    return np.concatenate(list(parts), axis=axis)


def all_reduce_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Element-wise sum of per-device partial tensors."""
    if not arrays:
        raise ValueError("all_reduce needs at least one array")
    out = np.array(arrays[0], copy=True)
    for arr in arrays[1:]:
        if arr.shape != out.shape:
            raise ValueError(f"all_reduce shape mismatch: {arr.shape} vs {out.shape}")
        out += arr
    return out
