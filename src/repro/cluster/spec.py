"""Cluster specification: devices + network, mirroring the paper's testbed."""

from __future__ import annotations

from dataclasses import dataclass, replace
from collections.abc import Sequence

from repro.cluster.device import PAPER_EDGE_DEVICE_GFLOPS, DeviceSpec
from repro.cluster.network import DEFAULT_EDGE_LATENCY_SECONDS, NetworkSpec

__all__ = ["ClusterSpec", "paper_cluster"]


@dataclass(frozen=True)
class ClusterSpec:
    """A set of computing devices plus the network connecting them.

    The *terminal* device (Fig. 3) performs pre/post-processing; the paper
    uses "another device in the same network", so by default it has the same
    speed as the computing devices.
    """

    devices: tuple[DeviceSpec, ...]
    network: NetworkSpec
    terminal: DeviceSpec | None = None

    def __post_init__(self) -> None:
        if not self.devices:
            raise ValueError("a cluster needs at least one computing device")

    # -- constructors --------------------------------------------------------

    @classmethod
    def homogeneous(
        cls,
        num_devices: int,
        gflops: float = PAPER_EDGE_DEVICE_GFLOPS,
        bandwidth_mbps: float = 500.0,
        latency_seconds: float = DEFAULT_EDGE_LATENCY_SECONDS,
        overhead_seconds: float = 0.0,
    ) -> "ClusterSpec":
        """The paper's setting: K identical 1-vCPU VMs on a capped network."""
        devices = tuple(
            DeviceSpec(f"device-{i}", gflops=gflops, overhead_seconds=overhead_seconds)
            for i in range(num_devices)
        )
        network = NetworkSpec(bandwidth_mbps=bandwidth_mbps, latency_seconds=latency_seconds)
        terminal = DeviceSpec("terminal", gflops=gflops, overhead_seconds=overhead_seconds)
        return cls(devices=devices, network=network, terminal=terminal)

    @classmethod
    def heterogeneous(
        cls,
        gflops: Sequence[float],
        bandwidth_mbps: float = 500.0,
        latency_seconds: float = DEFAULT_EDGE_LATENCY_SECONDS,
    ) -> "ClusterSpec":
        """Devices with differing speeds — the heterogeneity extension."""
        devices = tuple(
            DeviceSpec(f"device-{i}", gflops=g) for i, g in enumerate(gflops)
        )
        network = NetworkSpec(bandwidth_mbps=bandwidth_mbps, latency_seconds=latency_seconds)
        terminal = DeviceSpec("terminal", gflops=max(gflops))
        return cls(devices=devices, network=network, terminal=terminal)

    # -- accessors ------------------------------------------------------------

    @property
    def num_devices(self) -> int:
        return len(self.devices)

    @property
    def device_gflops(self) -> list[float]:
        return [d.gflops for d in self.devices]

    @property
    def terminal_device(self) -> DeviceSpec:
        return self.terminal if self.terminal is not None else self.devices[0]

    def with_bandwidth(self, bandwidth_mbps: float) -> "ClusterSpec":
        """Copy with a different network bandwidth (Fig. 5 sweep)."""
        return replace(self, network=self.network.with_bandwidth(bandwidth_mbps))

    def with_num_devices(self, num_devices: int) -> "ClusterSpec":
        """Copy truncated/extended to ``num_devices`` (Fig. 4 sweep).

        Extension replicates the first device's spec — only meaningful for
        homogeneous clusters.
        """
        if num_devices < 1:
            raise ValueError(f"device count must be >= 1, got {num_devices}")
        if num_devices <= self.num_devices:
            return replace(self, devices=self.devices[:num_devices])
        template = self.devices[0]
        extra = tuple(
            DeviceSpec(f"device-{i}", template.gflops, template.overhead_seconds)
            for i in range(self.num_devices, num_devices)
        )
        return replace(self, devices=self.devices + extra)


def paper_cluster(num_devices: int = 6, bandwidth_mbps: float = 500.0) -> ClusterSpec:
    """The evaluation cluster: six 1-vCPU VMs, 500 Mbps default bandwidth."""
    return ClusterSpec.homogeneous(
        num_devices=num_devices,
        gflops=PAPER_EDGE_DEVICE_GFLOPS,
        bandwidth_mbps=bandwidth_mbps,
    )
