"""Edge network model: bandwidth-limited, latency-bearing links.

The paper caps each VM's bandwidth at 500 Mbps (default) and varies it from
200 to 1000 Mbps in Fig. 5.  We model the network as pairwise links where
every transfer pays a fixed per-message latency α plus a serialisation time
``bytes / bandwidth`` — the classic α–β cost model used by the collective
communication literature (and implicitly by the paper's ``(K-1)NF/K``
volume accounting).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["NetworkSpec"]


#: Calibrated against the paper's BERT-Large curves (see EXPERIMENTS.md):
#: per-message latency of a TCP round on an edge LAN, and the fraction of
#: nominal bandwidth a PyTorch-gloo-style transport actually achieves.
DEFAULT_EDGE_LATENCY_SECONDS = 4e-3
DEFAULT_BANDWIDTH_EFFICIENCY = 0.55


@dataclass(frozen=True)
class NetworkSpec:
    """Link parameters shared by all device pairs.

    ``bandwidth_mbps`` is the per-device NIC rate in *megabits* per second
    (matching the paper's axis labels); ``latency_seconds`` is the one-way
    per-message cost — for edge networks (Wi-Fi / consumer Ethernet plus a
    TCP round per message) a few milliseconds is typical, and it is what
    makes tensor parallelism's chatty 2-All-Reduce-per-layer pattern lose
    even when volume alone would not.  ``efficiency`` is the achieved
    fraction of nominal bandwidth (protocol overhead, TCP dynamics).
    """

    bandwidth_mbps: float = 500.0
    latency_seconds: float = DEFAULT_EDGE_LATENCY_SECONDS
    efficiency: float = DEFAULT_BANDWIDTH_EFFICIENCY

    def __post_init__(self) -> None:
        if self.bandwidth_mbps <= 0:
            raise ValueError(f"bandwidth must be positive, got {self.bandwidth_mbps}")
        if self.latency_seconds < 0:
            raise ValueError(f"latency must be >= 0, got {self.latency_seconds}")
        if not (0 < self.efficiency <= 1):
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")

    @property
    def bytes_per_second(self) -> float:
        return self.bandwidth_mbps * 1e6 / 8.0 * self.efficiency

    def transfer_seconds(self, nbytes: float) -> float:
        """One point-to-point message of ``nbytes``: α + bytes/β."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        if nbytes == 0:
            return 0.0
        return self.latency_seconds + nbytes / self.bytes_per_second

    def serialization_seconds(self, nbytes: float) -> float:
        """Pure wire time without the per-message α (for pipelined steps)."""
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes}")
        return nbytes / self.bytes_per_second

    def with_bandwidth(self, bandwidth_mbps: float) -> "NetworkSpec":
        """Copy with a different bandwidth — the Fig. 5 sweep knob."""
        return replace(self, bandwidth_mbps=bandwidth_mbps)
