"""Latency accounting: per-phase breakdowns of one inference request.

Every inference system produces a :class:`LatencyBreakdown` so that the
benchmarks can report not just end-to-end latency (the paper's figures) but
also the compute/communication split that explains *why* tensor parallelism
loses at edge bandwidths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import current_tracer

__all__ = ["Phase", "LatencyBreakdown"]

_KINDS = ("compute", "comm", "overhead")


@dataclass(frozen=True)
class Phase:
    """One timed segment of the critical path.

    ``seconds`` is the *exposed* (critical-path) duration.  For comm phases
    that ran concurrently with compute, ``hidden_s`` records how much of the
    raw communication time was hidden behind that compute — so the full wire
    time of an overlapped All-Gather is ``seconds + hidden_s``.
    """

    name: str
    kind: str  # "compute" | "comm" | "overhead"
    seconds: float
    layer: int | None = None
    hidden_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {self.kind!r}")
        if self.seconds < 0:
            raise ValueError(f"phase duration must be >= 0, got {self.seconds}")
        if self.hidden_s < 0:
            raise ValueError(f"hidden duration must be >= 0, got {self.hidden_s}")


@dataclass
class LatencyBreakdown:
    """An ordered list of critical-path phases for one request."""

    phases: list[Phase] = field(default_factory=list)

    def add(
        self,
        name: str,
        kind: str,
        seconds: float,
        layer: int | None = None,
        hidden_s: float = 0.0,
    ) -> None:
        self.phases.append(
            Phase(name=name, kind=kind, seconds=seconds, layer=layer, hidden_s=hidden_s)
        )
        # mirror every phase into the active trace as a modeled span on the
        # critical-path track (no-op unless a tracer is installed)
        extra = {"hidden_s": hidden_s} if hidden_s else {}
        current_tracer().record_modeled(
            name, cat="phase", kind=kind, seconds=seconds, track="request", layer=layer,
            **extra,
        )

    def seconds_of_kind(self, kind: str) -> float:
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        return sum(p.seconds for p in self.phases if p.kind == kind)

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    @property
    def compute_seconds(self) -> float:
        return self.seconds_of_kind("compute")

    @property
    def comm_seconds(self) -> float:
        return self.seconds_of_kind("comm")

    @property
    def hidden_comm_seconds(self) -> float:
        """Communication time hidden behind compute (not on the critical path)."""
        return sum(p.hidden_s for p in self.phases)

    @property
    def comm_fraction(self) -> float:
        total = self.total_seconds
        return self.comm_seconds / total if total > 0 else 0.0

    def merged(self, other: "LatencyBreakdown") -> "LatencyBreakdown":
        """Concatenate two breakdowns (e.g. per-step traces of generation)."""
        return LatencyBreakdown(phases=self.phases + other.phases)

    def summary(self) -> str:
        """Human-readable multi-line report used by the examples."""
        lines = [
            f"total: {self.total_seconds * 1e3:9.2f} ms "
            f"(compute {self.compute_seconds * 1e3:.2f} ms, "
            f"comm {self.comm_seconds * 1e3:.2f} ms, "
            f"{self.comm_fraction:.0%} communication)"
        ]
        for phase in self.phases:
            layer = f" layer={phase.layer}" if phase.layer is not None else ""
            lines.append(
                f"  {phase.kind:8s} {phase.seconds * 1e3:9.3f} ms  {phase.name}{layer}"
            )
        return "\n".join(lines)
