"""Voltage — distributed transformer inference for edge devices.

A full reproduction of *"When the Edge Meets Transformers: Distributed
Inference with Transformer Models"* (Hu & Li, ICDCS 2024), including:

- :mod:`repro.tensor` — a NumPy neural-network inference substrate;
- :mod:`repro.models` — BERT-Large, GPT-2 and ViT re-implementations;
- :mod:`repro.core` — the paper's contribution: position-wise layer
  partitioning with adaptive attention computation orders (Theorems 1–3,
  Algorithms 1–2);
- :mod:`repro.cluster` — a simulated multi-device edge cluster (device
  compute model, bandwidth/latency links, collectives, event-driven latency
  simulation and a thread-backed real execution runtime);
- :mod:`repro.systems` — end-to-end inference systems: single-device,
  Voltage (plus adaptive, fault-tolerant and seq2seq variants), naive
  position partitioning, tensor / pipeline / data parallelism;
- :mod:`repro.efficient` — linear-attention and Linformer variants
  distributed Voltage-style;
- :mod:`repro.compress` — int8 quantization and head pruning, orthogonal
  to distribution;
- :mod:`repro.serving` — arrival processes and queueing simulation for
  request streams;
- :mod:`repro.bench` — the harness regenerating every figure and table of
  the paper's evaluation.

Quickstart::

    from repro.models import BertModel, tiny_config
    from repro.systems import VoltageSystem
    from repro.cluster import ClusterSpec

    model = BertModel(tiny_config(), num_classes=2)
    cluster = ClusterSpec.homogeneous(num_devices=4, gflops=5.0, bandwidth_mbps=500)
    system = VoltageSystem(model, cluster)
    result = system.run(model.encode_text("hello edge inference"))
    print(result.output, result.latency.total_seconds)
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
