"""Greedy text generation served by Voltage, one Algorithm-2 pass per token.

The paper measures a single forward pass; autoregressive decoding is just
that pass repeated with a growing sequence.  This example serves GPT-2
greedy generation through the distributed system and verifies the emitted
tokens are identical to local generation — position-wise partitioning is
exact, so distribution never changes what the model says.

It also shows the causal subtlety: each device's partition builds its
attention mask from *absolute* positions (a partition starting at position
30 may attend to positions 0..30).

Run:
    python examples/distributed_generation_gpt2.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.models import GPT2Model, gpt2_config
from repro.systems import VoltageSystem


def main() -> None:
    config = gpt2_config().scaled(num_layers=4, vocab_size=1000)
    print(f"building GPT-2 ({config.num_layers} layers, causal, pre-LN) ...")
    model = GPT2Model(config, rng=np.random.default_rng(0))
    cluster = ClusterSpec.homogeneous(4, bandwidth_mbps=500)
    system = VoltageSystem(model, cluster)

    prompt = model.tokenizer.encode("the edge devices cooperate to", max_length=32)
    max_new_tokens = 6

    print(f"prompt ids: {list(prompt)}")
    ids = list(prompt)
    total_latency = 0.0
    for step in range(max_new_tokens):
        result = system.run(np.asarray(ids, dtype=np.int64))
        next_id = int(np.argmax(result.output))
        ids.append(next_id)
        total_latency += result.total_seconds
        print(
            f"  step {step + 1}: sequence length {len(ids) - 1:3d} -> token {next_id:4d} "
            f"(simulated {result.total_seconds * 1e3:6.1f} ms, "
            f"orders: {result.meta['orders'][0]})"
        )

    local = model.generate(prompt, max_new_tokens=max_new_tokens)
    assert np.array_equal(np.asarray(ids), local), "distributed decoding diverged!"
    print(f"\ndistributed and local generation agree: {[int(t) for t in local]}")
    print(f"total simulated decoding latency: {total_latency * 1e3:.1f} ms "
          f"({max_new_tokens} tokens on {cluster.num_devices} devices)")


if __name__ == "__main__":
    main()
