"""Quickstart: distribute one BERT inference across four simulated edge devices.

Runs the same text-classification request through three deployments —
single device, Voltage (the paper's system), and tensor parallelism — and
shows that (a) all three produce identical predictions and (b) Voltage is
the only one that beats the single device on an edge network.

Run:
    python examples/quickstart.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.models import BertModel, tiny_config
from repro.systems import SingleDeviceSystem, TensorParallelSystem, VoltageSystem


def main() -> None:
    # A small BERT-style encoder (structurally identical to BERT-Large,
    # shrunk so the example runs in milliseconds).
    config = tiny_config(hidden_size=64, num_heads=8, num_layers=4, ffn_dim=128)
    model = BertModel(config, num_classes=2, rng=np.random.default_rng(0))

    # Four simulated edge devices on a 500 Mbps network (the paper's
    # default), plus a single-device reference deployment.
    edge_cluster = ClusterSpec.homogeneous(
        num_devices=4, gflops=0.05, bandwidth_mbps=500
    )
    single_cluster = edge_cluster.with_num_devices(1)

    text = "voltage distributes transformer inference across edge devices"
    token_ids = model.encode_text(text)
    print(f"input: {text!r} -> {len(token_ids)} tokens\n")

    systems = [
        SingleDeviceSystem(model, single_cluster),
        VoltageSystem(model, edge_cluster),
        TensorParallelSystem(model, edge_cluster),
    ]

    reference = None
    for system in systems:
        result = system.run(token_ids)
        if reference is None:
            reference = result.output
        assert np.allclose(result.output, reference, atol=1e-3), "outputs must agree!"
        print(
            f"{system.name:>16s}: {result.total_seconds * 1e3:8.2f} ms "
            f"(compute {result.latency.compute_seconds * 1e3:7.2f} ms, "
            f"comm {result.latency.comm_seconds * 1e3:7.2f} ms) "
            f"logits={np.round(result.output, 4)}"
        )

    print("\nPer-phase breakdown of the Voltage run:")
    print(VoltageSystem(model, edge_cluster).run(token_ids).latency.summary())


if __name__ == "__main__":
    main()
