"""Inference that survives stragglers and device failures.

Voltage's replicate-everything design (Section V-C) has two consequences
the paper doesn't exploit, both demonstrated here on one request:

1. **stragglers** — a device suddenly slowed 4× (foreground app, thermal
   throttling) stalls the static even split at every barrier; the adaptive
   planner notices within a layer or two and shifts positions away;
2. **failures** — a device dying mid-inference loses nothing: every survivor
   holds the full weights and the full layer input, so the request finishes
   with the *exact same output*, just a bit later.

Run:
    python examples/resilient_inference.py
"""

import numpy as np

from repro.cluster import ClusterSpec, spike_trace
from repro.models import BertModel, tiny_config
from repro.systems import AdaptiveVoltageSystem, FaultTolerantVoltageSystem, VoltageSystem


def straggler_story(model, cluster, ids) -> None:
    print("\n=== straggler: device 0 slows 4x for the whole request ===")
    trace = spike_trace(4, model.num_layers, victim=0, slowdown=4.0)
    for mode in ("static", "dynamic", "oracle"):
        system = AdaptiveVoltageSystem(model, cluster, trace=trace, mode=mode)
        result = system.run(ids)
        first = result.meta["schemes"][0]
        last = result.meta["schemes"][-1]
        print(
            f"  {mode:>8s}: compute makespan {result.latency.compute_seconds * 1e3:7.1f} ms"
            f"   device-0 share {first[0]:.2f} -> {last[0]:.2f}"
        )
    print("  (dynamic learns the straggler from observed layer times; oracle knows it)")


def failure_story(model, cluster, ids) -> None:
    print("\n=== failure: device 2 dies before layer 3, device 0 before layer 6 ===")
    healthy = VoltageSystem(model, cluster).run(ids)
    system = FaultTolerantVoltageSystem(
        model, cluster, failures={2: 3, 0: 6}, detection_timeout_seconds=0.2
    )
    result = system.run(ids)
    assert np.array_equal(
        np.argmax(result.output), np.argmax(healthy.output)
    ), "prediction changed!"
    np.testing.assert_allclose(result.output, healthy.output, atol=1e-5)
    print(f"  healthy run:   {healthy.total_seconds * 1e3:7.1f} ms on 4 devices")
    print(f"  with failures: {result.total_seconds * 1e3:7.1f} ms, "
          f"survivors {result.meta['survivors']}, "
          f"events {result.meta['failure_events']}")
    print("  outputs are identical — survivors re-partition with zero state loss,")
    print("  because every device holds full weights and the full layer input.")


def main() -> None:
    model = BertModel(
        tiny_config(hidden_size=64, num_heads=8, num_layers=8, ffn_dim=128),
        num_classes=2,
        rng=np.random.default_rng(0),
    )
    cluster = ClusterSpec.homogeneous(4, gflops=0.05, bandwidth_mbps=500)
    ids = model.encode_text("resilient distributed inference on flaky edge devices " * 2)
    print(f"request: {len(ids)} tokens, {model.num_layers}-layer encoder, 4 devices")
    straggler_story(model, cluster, ids)
    failure_story(model, cluster, ids)


if __name__ == "__main__":
    main()
