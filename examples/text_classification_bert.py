"""The paper's text-classification workload: BERT on a 200-word input.

Two parts:

1. *Real execution* — a BERT model (BERT-Large architecture, with the layer
   count configurable so the demo is fast) classifies a random 200-word
   string through Voltage's distributed protocol, including the threaded
   runtime with per-device traffic counters.

2. *Full-scale latency projection* — the analytic models sweep device
   counts for the real 24-layer BERT-Large, regenerating the Fig. 4(a)
   curve on your terminal.

Run:
    python examples/text_classification_bert.py            # fast (4 layers)
    python examples/text_classification_bert.py --layers 24  # full-depth real run
"""

import argparse

import numpy as np

from repro.bench.analytic import single_device_latency, voltage_latency
from repro.bench.workloads import paper_workloads, random_text
from repro.cluster import ClusterSpec, paper_cluster
from repro.models import BertModel, bert_large_config
from repro.systems import VoltageSystem


def run_real_inference(num_layers: int, num_devices: int) -> None:
    config = bert_large_config().scaled(num_layers=num_layers)
    print(f"building BERT ({num_layers} layers, F={config.hidden_size}) ...")
    model = BertModel(config, num_classes=2, rng=np.random.default_rng(0))
    cluster = ClusterSpec.homogeneous(num_devices, bandwidth_mbps=500)
    system = VoltageSystem(model, cluster)

    text = random_text(200)
    token_ids = model.encode_text(text)
    print(f"classifying a {len(text.split())}-word string -> {len(token_ids)} tokens")

    result = system.run(token_ids)
    prediction = int(np.argmax(result.output))
    print(
        f"prediction: class {prediction}; simulated latency "
        f"{result.total_seconds:.3f} s on {num_devices} devices "
        f"({result.latency.comm_fraction:.0%} communication)"
    )
    print(f"attention orders chosen per layer: {result.meta['orders']}")

    print("\nrunning the same request on REAL concurrent workers ...")
    output, stats = system.execute_threaded(token_ids)
    assert np.allclose(output, result.output, atol=1e-4)
    mb = stats[0].bytes_received / 1e6
    print(f"threaded output matches; each worker received {mb:.2f} MB "
          f"over {stats[0].collective_calls} All-Gathers")


def project_full_scale() -> None:
    workload = paper_workloads()["bert"]
    single = single_device_latency(
        workload.config, workload.n, paper_cluster(1), post_flops=workload.post_flops
    ).total_seconds
    print(f"\nFull BERT-Large (24 layers) latency projection at 500 Mbps:")
    print(f"  single device: {single:.3f} s")
    for k in range(2, 7):
        latency = voltage_latency(
            workload.config, workload.n, paper_cluster(k), post_flops=workload.post_flops
        ).total_seconds
        print(f"  Voltage, K={k}: {latency:.3f} s  ({1 - latency / single:+.1%} vs single)")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--layers", type=int, default=4,
                        help="transformer layers for the real run (24 = full BERT-Large)")
    parser.add_argument("--devices", type=int, default=4)
    args = parser.parse_args()

    run_real_inference(args.layers, args.devices)
    project_full_scale()


if __name__ == "__main__":
    main()
