"""Serving a stream of edge inference requests: which strategy should you run?

The paper's argument (Section V-C) is about *traffic shape*: edge requests
arrive sporadically with batch size 1, so per-request latency — not
throughput — is the metric.  This example pushes the same Poisson request
stream through all five deployment strategies at a sporadic and at a
saturating rate and prints the latency percentiles.

Run:
    python examples/edge_serving.py
    python examples/edge_serving.py --rate 1.0 --requests 200
"""

import argparse

from repro.bench.workloads import paper_workloads
from repro.cluster import paper_cluster
from repro.serving import poisson_arrivals, service_models


def serve_at_rate(servers: dict, rate: float, num_requests: int, n: int) -> None:
    requests = poisson_arrivals(num_requests, rate=rate, n_tokens=n, seed=0)
    print(f"\n--- Poisson arrivals at {rate:g} req/s "
          f"({num_requests} BERT-Large requests, N={n}) ---")
    results = {name: server.run(requests) for name, server in servers.items()}
    best = min(results, key=lambda name: results[name].p50_latency)
    for name, stats in sorted(results.items(), key=lambda kv: kv[1].p50_latency):
        marker = "  <- best p50" if name == best else ""
        print(f"  {name:>16s}: {stats.summary()}{marker}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=None,
                        help="single custom arrival rate (req/s)")
    parser.add_argument("--requests", type=int, default=80)
    parser.add_argument("--devices", type=int, default=6)
    args = parser.parse_args()

    workload = paper_workloads()["bert"]
    cluster = paper_cluster(args.devices)
    servers = service_models(
        workload.config, cluster,
        pre_flops=workload.pre_flops, post_flops=workload.post_flops,
    )

    if args.rate is not None:
        serve_at_rate(servers, args.rate, args.requests, workload.n)
        return

    serve_at_rate(servers, 0.1, args.requests, workload.n)   # sporadic: the edge regime
    serve_at_rate(servers, 0.8, args.requests, workload.n)   # saturating: batch serving
    print(
        "\ntakeaway: under sporadic traffic Voltage gives the best typical\n"
        "(p50/mean) latency — the paper's claim — while replicated serving\n"
        "trades ~1.5x higher typical latency for a perfectly flat tail; under\n"
        "saturation the throughput-oriented strategies the paper rejects for\n"
        "the edge take over entirely.  Traffic shape decides, which is exactly\n"
        "the paper's Section V-C argument."
    )


if __name__ == "__main__":
    main()
