"""ViT image classification on a *heterogeneous* edge cluster.

The paper evaluates homogeneous VMs and flags adaptive partition schemes as
future work; this example exercises that extension: a cluster mixing slow
and fast devices (think: two phones, a laptop, a desktop), where Voltage's
makespan-optimal planner assigns each device a position range proportional
to what it can actually finish.

Run:
    python examples/image_classification_vit.py
"""

import numpy as np

from repro.bench.workloads import random_image
from repro.cluster import ClusterSpec
from repro.core.partition import PartitionScheme
from repro.models import ViTModel, vit_base_config
from repro.systems import VoltageSystem


def main() -> None:
    # A ViT with the real patch geometry (224x224, 16x16 patches -> 197
    # tokens) but fewer layers so the example runs quickly.
    config = vit_base_config().scaled(num_layers=4)
    print(f"building ViT ({config.num_layers} layers, 197 tokens/image) ...")
    model = ViTModel(config, num_classes=1000, rng=np.random.default_rng(0))

    # phone, phone, laptop, desktop — GFLOP/s ratios 1 : 1 : 2 : 4
    speeds = [6.0, 6.0, 12.0, 24.0]
    cluster = ClusterSpec.heterogeneous(speeds, bandwidth_mbps=500)
    image = random_image(size=224, seed=1)

    even_system = VoltageSystem(model, cluster)  # the paper's 1/K split
    auto_system = VoltageSystem(model, cluster, scheme="auto")

    even = even_system.run(image)
    auto = auto_system.run(image)
    assert np.allclose(even.output, auto.output, atol=1e-3)
    assert int(np.argmax(even.output)) == int(np.argmax(model(image)))

    n = model.sequence_length(image)
    print(f"\npredicted ImageNet class: {int(np.argmax(auto.output))}")
    print(f"device speeds (GFLOP/s):      {speeds}")
    even_lengths = [p.length for p in PartitionScheme.even(4).positions(n)]
    auto_lengths = [p.length for p in auto_system.scheme_for(n).positions(n)]
    print(f"even scheme  -> positions/device: {even_lengths}  "
          f"latency {even.total_seconds * 1e3:7.1f} ms")
    print(f"auto scheme  -> positions/device: {auto_lengths}  "
          f"latency {auto.total_seconds * 1e3:7.1f} ms")
    saved = even.total_seconds - auto.total_seconds
    print(f"\nmakespan-optimal planning saves {saved * 1e3:.1f} ms "
          f"({saved / even.total_seconds:.0%}) by matching work to device speed")


if __name__ == "__main__":
    main()
