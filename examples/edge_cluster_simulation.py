"""What-if exploration of an edge cluster design space — simulation only.

Uses the weight-free analytic latency models (the same ones the figure
benchmarks use, verified phase-by-phase against the real systems by the
test-suite) to answer deployment questions for full-scale BERT-Large
without instantiating 1.3 GB of weights:

- How many devices are worth adding at my bandwidth?
- At what bandwidth does each strategy start paying off?
- What does a request stream do to pipeline parallelism?

Run:
    python examples/edge_cluster_simulation.py
    python examples/edge_cluster_simulation.py --bandwidth 100
"""

import argparse

from repro.bench.analytic import (
    pipeline_latency,
    single_device_latency,
    tensor_parallel_latency,
    voltage_latency,
)
from repro.bench.workloads import paper_workloads
from repro.cluster import ClusterSpec, paper_cluster
from repro.models import BertModel, bert_large_config
from repro.systems import PipelineParallelSystem


def sweep_devices(bandwidth: float) -> None:
    workload = paper_workloads()["bert"]
    print(f"\nBERT-Large latency (s) vs device count at {bandwidth:g} Mbps:")
    print(f"{'K':>3s} {'voltage':>9s} {'tensor-par':>11s} {'pipeline':>9s}")
    single = single_device_latency(
        workload.config, workload.n, paper_cluster(1, bandwidth),
        post_flops=workload.post_flops,
    ).total_seconds
    print(f"{1:>3d} {single:>9.3f} {single:>11.3f} {single:>9.3f}   <- single device")
    for k in (2, 3, 4, 5, 6, 8):
        cluster = paper_cluster(k, bandwidth)
        kwargs = dict(pre_flops=workload.pre_flops, post_flops=workload.post_flops)
        v = voltage_latency(workload.config, workload.n, cluster, **kwargs).total_seconds
        t = tensor_parallel_latency(workload.config, workload.n, cluster, **kwargs).total_seconds
        p = pipeline_latency(workload.config, workload.n, cluster, **kwargs).total_seconds
        marks = " <- best" if v < single else ""
        print(f"{k:>3d} {v:>9.3f} {t:>11.3f} {p:>9.3f}{marks}")


def find_crossovers() -> None:
    workload = paper_workloads()["bert"]
    print("\nminimum bandwidth (Mbps) at which each strategy beats single device (K=6):")
    for name, fn in (("Voltage", voltage_latency), ("Tensor parallelism", tensor_parallel_latency)):
        crossover = None
        for bandwidth in range(100, 3100, 100):
            cluster = paper_cluster(6, bandwidth)
            single = single_device_latency(
                workload.config, workload.n, cluster, post_flops=workload.post_flops
            ).total_seconds
            distributed = fn(
                workload.config, workload.n, cluster, post_flops=workload.post_flops
            ).total_seconds
            if distributed < single:
                crossover = bandwidth
                break
        print(f"  {name:>20s}: {crossover if crossover else '>3000'} Mbps")


def pipeline_throughput_story() -> None:
    print("\npipeline parallelism under a saturated request stream (4-layer demo model):")
    import numpy as np

    model = BertModel(bert_large_config().scaled(num_layers=4),
                      rng=np.random.default_rng(0))
    system = PipelineParallelSystem(model, ClusterSpec.homogeneous(4, bandwidth_mbps=500))
    report = system.serve_stream(n=202, num_requests=16, arrival_interval=0.0)
    print(f"  per-request latency: {report.mean_latency:.3f} s "
          f"(never better than single-request)")
    print(f"  throughput:          {report.throughput_rps:.2f} requests/s "
          f"(>{1 / report.mean_latency:.2f}/s that latency alone would allow)")
    print("  -> great for batch serving, useless for the paper's sporadic edge requests")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--bandwidth", type=float, default=500.0)
    args = parser.parse_args()
    sweep_devices(args.bandwidth)
    find_crossovers()
    pipeline_throughput_story()


if __name__ == "__main__":
    main()
