"""Distributed sequence-to-sequence translation with cross-attention.

The paper covers encoder-only and decoder-only models; this example runs the
original encoder–decoder transformer through a Voltage-style deployment:
encoder layers partition by source position, decoder layers by target
position, and cross-attention reads the encoder memory that the final
encoder All-Gather left replicated on every device — no extra communication.

It also demonstrates the cross-attention-specific order analysis: when the
decoded prefix is longer than the source sentence (P > N_mem), the
self-attention Theorem 2 no longer applies verbatim and the system selects
the order by direct enumeration.

Run:
    python examples/translation_seq2seq.py
"""

import numpy as np

from repro.cluster import ClusterSpec
from repro.core import complexity
from repro.models.config import tiny_config
from repro.models.seq2seq import Seq2SeqTransformer
from repro.systems.seq2seq import Seq2SeqVoltageSystem


def main() -> None:
    config = tiny_config(
        hidden_size=64, num_heads=8, num_layers=3, ffn_dim=128, vocab_size=200
    ).scaled(activation="relu")
    print(f"building seq2seq transformer ({config.num_layers}+{config.num_layers} layers) ...")
    model = Seq2SeqTransformer(config, rng=np.random.default_rng(0))
    cluster = ClusterSpec.homogeneous(3, gflops=0.05, bandwidth_mbps=500)
    system = Seq2SeqVoltageSystem(model, cluster)

    source = model.tokenizer.encode("the edge devices translate together")
    print(f"source ids: {list(map(int, source))}")

    # local reference translation
    local = model.greedy_translate(source, max_length=8)

    # distributed translation: one Voltage encoder+decoder pass per token
    ids = [1]  # BOS
    total_latency = 0.0
    while len(ids) < 8:
        result = system.run((source, np.asarray(ids, dtype=np.int64)))
        next_id = int(np.argmax(result.output))
        total_latency += result.total_seconds
        n_tgt = len(ids)
        cross_order = complexity.select_cross_order(
            len(source), max(1, n_tgt // cluster.num_devices),
            config.hidden_size, config.head_dim,
        )
        print(f"  prefix {n_tgt:2d} -> token {next_id:3d}  "
              f"({result.total_seconds * 1e3:6.1f} ms, cross-attn order: "
              f"{'Eq.8-style' if cross_order.is_reordered else cross_order.score.name})")
        ids.append(next_id)
        if next_id == 2:  # EOS
            break

    assert np.array_equal(np.asarray(ids), local), "distributed translation diverged!"
    print(f"\ndistributed == local translation: {list(map(int, ids))}")
    print(f"total simulated latency: {total_latency * 1e3:.1f} ms across "
          f"{cluster.num_devices} devices")


if __name__ == "__main__":
    main()
